// Pluggable flow-state strategies (DESIGN.md §14).
//
// The StateStrategy object is the control plane: it owns the flow tables in
// whatever topology its strategy needs, hands per-(core, hop) views to
// FlowStateApi (state/view.hpp — the non-virtual data plane), and exposes
// the audit/telemetry surface the executors wire up. One strategy instance
// serves one middlebox (all hops, all cores).
//
// Table topology by strategy, for an NF that asked for per-core capacity C
// on N cores:
//   writing-partition — N tables of C, table[c] owned and written by core c
//                       (the paper's layout, byte-for-byte);
//   replication       — N replicas of C*bit_ceil(N) each (every replica
//                       holds the whole flow space), table[c] written only
//                       by core c: NF handlers on the sequencer, sync-frame
//                       replay everywhere else — still single-writer;
//   shared-locked     — ONE table of C*bit_ceil(N), aliased into every
//                       per-core slot, guarded by a StripedLock.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/flow_table.hpp"
#include "state/config.hpp"
#include "state/sync.hpp"
#include "state/view.hpp"

namespace sprayer::state {

/// Replica-equality audit result (replication only; other strategies report
/// all-zero). Quiescent callers only: tables are walked unlocked.
struct DivergenceReport {
  u64 entries_compared = 0;
  u64 mismatched_entries = 0;  // present on both sides, different bytes
  u64 missing_entries = 0;     // in the reference replica, absent elsewhere
  u64 extra_entries = 0;       // in another replica, absent from reference
  [[nodiscard]] bool clean() const noexcept {
    return mismatched_entries == 0 && missing_entries == 0 &&
           extra_entries == 0;
  }
  [[nodiscard]] u64 total() const noexcept {
    return mismatched_entries + missing_entries + extra_entries;
  }
};

/// Aggregated sync counters (all-zero outside replication). Loosely
/// consistent while workers run, exact at quiescence.
struct SyncStatsSnapshot {
  u64 frames_sent = 0;
  u64 bytes_sent = 0;
  u64 ops_sent = 0;
  u64 frames_applied = 0;
  u64 ops_applied = 0;
  u64 apply_failures = 0;
  u64 alloc_stalls = 0;
};

class StateStrategy {
 public:
  using FlowTable = core::FlowTable;

  [[nodiscard]] static std::unique_ptr<StateStrategy> make(
      const StateStrategyConfig& cfg, u32 num_cores);

  virtual ~StateStrategy() = default;

  [[nodiscard]] virtual StateStrategyKind kind() const noexcept = 0;
  [[nodiscard]] const char* name() const noexcept { return to_string(kind()); }
  [[nodiscard]] u32 num_cores() const noexcept { return num_cores_; }
  [[nodiscard]] virtual u32 num_hops() const noexcept = 0;

  /// Declare the next chain hop (call once per hop, in hop order, before
  /// any view/table accessor). `capacity` is the per-designated-core
  /// capacity the NF asked for; strategies scale it as their topology
  /// requires. Stateless hops pass a minimal capacity like the executors
  /// always have.
  virtual void add_hop(u32 capacity, u32 entry_size) = 0;

  /// One FlowTable* per core for `hop` (entries alias for shared-locked).
  [[nodiscard]] virtual std::span<FlowTable* const> hop_tables(
      u32 hop) noexcept = 0;

  /// Data-plane view for FlowStateApi of (core, hop).
  [[nodiscard]] virtual CoreStateView view(CoreId core, u32 hop) noexcept = 0;

  /// Engine-side broadcast/apply runtime; null outside replication.
  [[nodiscard]] virtual SyncRuntime* sync_runtime(CoreId core) noexcept {
    (void)core;
    return nullptr;
  }

  /// False when connection packets should run on their arrival core
  /// instead of redirecting to the designated core (shared-locked).
  [[nodiscard]] virtual bool redirects_connection_packets() const noexcept {
    return true;
  }

  /// Compare every replica against core 0's; counts land in the report and
  /// the cumulative divergence counters below. Quiescent callers only.
  [[nodiscard]] virtual DivergenceReport check_divergence() {
    ++divergence_checks_;
    return {};
  }
  [[nodiscard]] u64 divergence_checks() const noexcept {
    return divergence_checks_;
  }
  [[nodiscard]] u64 divergence_mismatches() const noexcept {
    return divergence_mismatches_;
  }

  [[nodiscard]] virtual SyncStatsSnapshot sync_stats() const { return {}; }

 protected:
  explicit StateStrategy(u32 num_cores) : num_cores_(num_cores) {}

  u32 num_cores_;
  RelaxedU64 divergence_checks_;
  RelaxedU64 divergence_mismatches_;
};

}  // namespace sprayer::state

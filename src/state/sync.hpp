// Replication state-sync frames (DESIGN.md §14).
//
// Under state-compute replication, flow events still redirect to the
// flow's designated core — that core is the *sequencer*: the one place the
// NF's connection handlers run, so global resources (NAT ports) are claimed
// exactly once and every replica converges on identical bytes. FlowStateApi
// logs the handlers' mutations (state/view.hpp); after each connection
// dispatch (and after housekeeping) the engine harvests the log into sync
// frames — ordinary pool packets carrying serialized ops — and broadcasts
// one copy to every other core over the existing mesh rings, inheriting the
// lossless park-and-retry transfer machinery wholesale. Receivers replay
// the ops into their own replica (no NF code runs on the apply path) and
// free the frame.
//
// Per-flow total order holds end to end: a flow has one sequencer, the
// SPSC mesh rings are FIFO, and frames are applied in arrival order.
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/relaxed.hpp"
#include "common/types.hpp"
#include "core/flow_table.hpp"
#include "net/packet.hpp"
#include "state/view.hpp"

namespace sprayer::net {
class PacketPool;
}

namespace sprayer::state {

/// user_tag bit marking a mesh-ring descriptor as a sync frame. Bits 63/62
/// and the low 48 belong to the reorder observatory and the path tracer;
/// real connection packets on the mesh are always parsed TCP, sync frames
/// never are, so detection checks both the tag and !parsed().
inline constexpr u64 kSyncFrameTag = u64{1} << 61;

/// First payload word of every sync frame ("SPRS").
inline constexpr u32 kSyncFrameMagic = 0x53505253u;

struct SyncFrameHeader {
  u32 magic = kSyncFrameMagic;
  u16 op_count = 0;
  u8 src_core = 0;
  u8 version = 1;
};
static_assert(sizeof(SyncFrameHeader) == 8);

/// Per-op wire header; followed by the raw FiveTuple bytes and, for
/// upserts, `entry_len` entry bytes.
struct SyncOpHeader {
  u8 kind = 0;  // ReplOpKind
  u8 hop = 0;
  u16 entry_len = 0;
  u32 hash = 0;
};
static_assert(sizeof(SyncOpHeader) == 8);

[[nodiscard]] inline bool is_sync_frame(const net::Packet& pkt) noexcept {
  if ((pkt.user_tag & kSyncFrameTag) == 0 || pkt.parsed()) return false;
  if (pkt.len() < sizeof(SyncFrameHeader)) return false;
  u32 magic;
  std::memcpy(&magic, pkt.data(), sizeof(magic));
  return magic == kSyncFrameMagic;
}

/// Per-core replication runtime: the op log, the serializer feeding the
/// engine's broadcast, and the applier replaying received frames into this
/// core's replicas. Owned by ReplicationStrategy; single-writer except the
/// stats cells (telemetry gauges read them live).
class SyncRuntime {
 public:
  struct Stats {
    RelaxedU64 frames_sent;     // one per destination per chunk
    RelaxedU64 bytes_sent;      // payload bytes, summed over destinations
    RelaxedU64 ops_sent;        // ops harvested (pre-fanout)
    RelaxedU64 frames_applied;  // frames received and replayed
    RelaxedU64 ops_applied;
    RelaxedU64 apply_failures;  // replica full on upsert / missing on remove
    RelaxedU64 alloc_stalls;    // broadcast deferred: pool empty
  };

  /// `hop_replicas[h]` is THIS core's replica table for hop h (harvest
  /// source and apply target alike).
  SyncRuntime(CoreId core, std::vector<core::FlowTable*> hop_replicas)
      : core_(core), replicas_(std::move(hop_replicas)) {}

  [[nodiscard]] CoreId core() const noexcept { return core_; }
  [[nodiscard]] ReplOpLog& log() noexcept { return log_; }
  [[nodiscard]] bool has_pending() const noexcept { return !log_.empty(); }

  /// Last packet pool seen by this core's engine; sync frames are allocated
  /// from it. Null until the core processes its first rx batch (no flows —
  /// and hence no ops — can exist before that).
  net::PacketPool* pool_hint = nullptr;

  /// Serialize the current log into wire chunks of at most `max_bytes`
  /// payload each, reading upsert bytes from this core's replicas *now*
  /// (ops whose entry has since been removed are skipped — the logged
  /// remove that follows still ships). Chunk views stay valid until the
  /// next serialize() call; the log is left intact so a failed broadcast
  /// (pool empty) can retry the exact same ops later.
  [[nodiscard]] std::span<const std::span<const u8>> serialize(u32 max_bytes);

  /// Broadcast bookkeeping, called by the engine once every frame of a
  /// serialize() result has been staged.
  void note_broadcast(u64 frames, u64 bytes, u64 ops) noexcept {
    stats_.frames_sent += frames;
    stats_.bytes_sent += bytes;
    stats_.ops_sent += ops;
  }
  void note_alloc_stall() noexcept { ++stats_.alloc_stalls; }
  void clear_log() noexcept { log_.clear(); }

  /// Replay one received frame into this core's replicas. Returns the op
  /// counts so the engine can charge modeled cycles.
  struct ApplyResult {
    u32 upserts = 0;
    u32 removes = 0;
  };
  ApplyResult apply(std::span<const u8> payload);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  CoreId core_;
  std::vector<core::FlowTable*> replicas_;
  ReplOpLog log_;
  std::vector<u8> wire_;                     // serialize() scratch
  std::vector<std::span<const u8>> chunks_;  // views into wire_
  Stats stats_;
};

}  // namespace sprayer::state

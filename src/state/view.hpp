// Per-core data-plane handles a state strategy hands to FlowStateApi.
//
// The strategy object (state/strategy.hpp) is the control plane: it builds
// table topologies and owns the pieces below. The data plane stays
// non-virtual — FlowStateApi switches on CoreStateView::kind inline, so the
// writing-partition hot path compiles to the same code it was before the
// strategies existed (the parity requirement of the ablation).
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/compiler.hpp"
#include "common/types.hpp"
#include "net/five_tuple.hpp"
#include "state/config.hpp"

namespace sprayer::state {

// ---------------------------------------------------------------------------
// Replication op log
// ---------------------------------------------------------------------------

enum class ReplOpKind : u8 { kUpsert = 0, kRemove = 1 };

/// One logged flow-state mutation on the sequencer (designated) core. Entry
/// bytes are NOT captured here: the broadcaster reads the entry's *current*
/// bytes from the sequencer's replica at harvest time, so a batch worth of
/// in-place mutations collapses into one upsert with the final state.
struct ReplOp {
  net::FiveTuple key;
  u32 hash = 0;
  u8 hop = 0;
  ReplOpKind kind = ReplOpKind::kUpsert;
};

/// Ordered per-core mutation log, appended by FlowStateApi during connection
/// handlers and housekeeping, harvested by the engine's sync broadcast.
/// Single-writer: only the owning core's worker touches it.
class ReplOpLog {
 public:
  /// Record an upsert unless the key+hop's most recent logged op is already
  /// an upsert (the harvest reads final bytes, so consecutive upserts of the
  /// same entry are redundant). A remove in between keeps both ops: the
  /// remove/re-insert order must survive on the replicas.
  void record_upsert(const net::FiveTuple& key, u32 hash, u8 hop) {
    for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
      if (it->hop != hop || it->key != key) continue;
      if (it->kind == ReplOpKind::kUpsert) return;
      break;  // most recent op is a remove: append the re-upsert
    }
    ops_.push_back({key, hash, hop, ReplOpKind::kUpsert});
    ++logged_;
  }

  void record_remove(const net::FiveTuple& key, u32 hash, u8 hop) {
    ops_.push_back({key, hash, hop, ReplOpKind::kRemove});
    ++logged_;
  }

  [[nodiscard]] bool empty() const noexcept { return ops_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return ops_.size(); }
  [[nodiscard]] std::span<const ReplOp> ops() const noexcept { return ops_; }
  void clear() noexcept { ops_.clear(); }
  /// Lifetime count of logged ops (dedup-suppressed ones excluded).
  [[nodiscard]] u64 logged() const noexcept { return logged_; }

 private:
  std::vector<ReplOp> ops_;
  u64 logged_ = 0;
};

// ---------------------------------------------------------------------------
// Shared-locked stripe set
// ---------------------------------------------------------------------------

/// The strawman's lock: readers take the key's stripe, structural writers
/// (insert/remove) take every stripe in index order. That inversion keeps
/// reads concurrent while making probe sequences safe against concurrent
/// slot allocation — a probe can cross stripe boundaries, so per-stripe
/// write locking would race two inserts into one free slot.
class StripedLock {
 public:
  static constexpr u32 kMaxStripes = 64;

  explicit StripedLock(u32 stripes)
      : count_(stripes), mask_(stripes - 1),
        stripes_(std::make_unique<Stripe[]>(stripes)) {
    SPRAYER_CHECK_MSG(stripes >= 1 && stripes <= kMaxStripes &&
                          (stripes & (stripes - 1)) == 0,
                      "lock_stripes must be a power of two in [1, 64]");
  }

  void lock_stripe(u32 hash) noexcept { acquire(hash & mask_); }
  void unlock_stripe(u32 hash) noexcept { release(hash & mask_); }

  void lock_all() noexcept {
    for (u32 i = 0; i < count_; ++i) acquire(i);
  }
  void unlock_all() noexcept {
    for (u32 i = count_; i-- > 0;) release(i);
  }

 private:
  struct alignas(kCacheLineSize) Stripe {
    std::atomic_flag flag = ATOMIC_FLAG_INIT;
  };

  void acquire(u32 i) noexcept {
    while (stripes_[i].flag.test_and_set(std::memory_order_acquire)) {
      cpu_relax();
    }
  }
  void release(u32 i) noexcept {
    stripes_[i].flag.clear(std::memory_order_release);
  }

  u32 count_;
  u32 mask_;
  std::unique_ptr<Stripe[]> stripes_;
};

// ---------------------------------------------------------------------------
// The per-(core, hop) view
// ---------------------------------------------------------------------------

/// What FlowStateApi needs from its strategy, by kind:
///   writing-partition — nothing (the default-constructed view);
///   replication       — the core's shared op log plus this hop's id;
///   shared-locked     — this hop's stripe set.
struct CoreStateView {
  StateStrategyKind kind = StateStrategyKind::kWritingPartition;
  ReplOpLog* log = nullptr;     // replication only (per core, all hops)
  StripedLock* lock = nullptr;  // shared-locked only (per hop, all cores)
  u8 hop = 0;
};

}  // namespace sprayer::state

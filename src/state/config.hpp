// State-strategy selection (DESIGN.md §14).
//
// The paper's writing partition (§3.3) is one point in the design space of
// "how do sprayed cores share flow state". This config picks the point:
//
//   * kWritingPartition — redirect flow events to the designated core; any
//     core reads the owner's table lock-free (the paper's design, default).
//   * kReplication     — State-Compute Replication (arXiv 2309.14647):
//     every core holds a full replica; the designated core sequences flow
//     events and broadcasts the resulting state deltas over the existing
//     mesh rings, so the regular path reads purely local state.
//   * kSharedLocked    — one shared table behind a striped lock, flow
//     events processed wherever they arrive: the naive baseline the paper
//     argues against, kept honest and raced in bench/state_strategy.
//
// Kept free of heavyweight includes so core/config.hpp can embed it.
#pragma once

#include "common/types.hpp"

namespace sprayer::state {

enum class StateStrategyKind : u8 {
  kWritingPartition,
  kReplication,
  kSharedLocked,
};

[[nodiscard]] constexpr const char* to_string(StateStrategyKind k) noexcept {
  switch (k) {
    case StateStrategyKind::kWritingPartition:
      return "writing_partition";
    case StateStrategyKind::kReplication:
      return "replication";
    case StateStrategyKind::kSharedLocked:
      return "shared_locked";
  }
  return "unknown";
}

struct StateStrategyConfig {
  StateStrategyKind kind = StateStrategyKind::kWritingPartition;
  /// Shared-locked: reader stripes (power of two, at most 64). Structural
  /// writes take every stripe; readers take one, so stripes bound reader
  /// convoying, not writer cost.
  u32 lock_stripes = 64;
  /// Replication: max payload bytes per state-sync frame (clamped to the
  /// packet pool's buffer size at broadcast time).
  u32 sync_frame_bytes = 192;
};

}  // namespace sprayer::state

// The simulation kernel: a virtual clock plus the event queue.
//
// Replaces the paper's physical testbed (§5): components — links, NIC, cores,
// TCP endpoints — schedule events against this clock; per-core CPU time is
// accounted in cycles and converted to simulated time (units.hpp).
#pragma once

#include "common/check.hpp"
#include "common/units.hpp"
#include "sim/event_queue.hpp"

namespace sprayer::sim {

class Simulator {
 public:
  [[nodiscard]] Time now() const noexcept { return now_; }

  void schedule_at(Time at, IEventTarget* target, u64 tag = 0) {
    SPRAYER_CHECK_MSG(at >= now_, "cannot schedule into the past");
    queue_.schedule(at, target, tag);
  }
  void schedule_in(Time delay, IEventTarget* target, u64 tag = 0) {
    queue_.schedule(now_ + delay, target, tag);
  }

  /// Run until the queue drains or the clock passes `end` (inclusive).
  void run_until(Time end) {
    while (!queue_.empty() && queue_.next_time() <= end) {
      step();
    }
    if (now_ < end) now_ = end;
  }

  /// Run until the event queue is empty.
  void run() {
    while (!queue_.empty()) step();
  }

  /// Dispatch exactly one event; returns false if the queue is empty.
  bool step() {
    if (queue_.empty()) return false;
    const auto e = queue_.pop();
    SPRAYER_DCHECK(e.time >= now_);
    now_ = e.time;
    ++events_dispatched_;
    e.target->handle_event(e.tag);
    return true;
  }

  [[nodiscard]] u64 events_dispatched() const noexcept {
    return events_dispatched_;
  }
  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }

 private:
  Time now_ = 0;
  EventQueue queue_;
  u64 events_dispatched_ = 0;
};

}  // namespace sprayer::sim

#include "sim/link.hpp"

#include "net/packet_pool.hpp"

namespace sprayer::sim {

bool Link::send(net::Packet* pkt) {
  SPRAYER_DCHECK(pkt != nullptr);
  if (!busy_) {
    start_transmission(pkt);
    return true;
  }
  if (fifo_.size() >= cfg_.queue_packets) {
    ++counters_.dropped;
    pkt->pool()->free(pkt);
    return false;
  }
  fifo_.push_back(pkt);
  return true;
}

void Link::start_transmission(net::Packet* pkt) {
  busy_ = true;
  in_flight_ = pkt;
  const Time ser = serialization_time(pkt->len() + kEthernetWireOverhead,
                                      cfg_.rate_bps);
  sim_.schedule_in(ser, this, kTagTxDone);
}

void Link::handle_event(u64 tag) {
  if (tag == kTagTxDone) {
    net::Packet* pkt = in_flight_;
    in_flight_ = nullptr;
    ++counters_.tx_packets;
    counters_.tx_bytes += pkt->len();
    // The packet now propagates; delivery after the cable delay. Serialization
    // already ordered packets, so the propagating queue is FIFO.
    propagating_.push_back(pkt);
    sim_.schedule_in(cfg_.propagation_delay, this, kTagDeliver);
    if (!fifo_.empty()) {
      net::Packet* next = fifo_.front();
      fifo_.pop_front();
      start_transmission(next);
    } else {
      busy_ = false;
    }
  } else {
    SPRAYER_DCHECK(tag == kTagDeliver);
    SPRAYER_DCHECK(!propagating_.empty());
    net::Packet* pkt = propagating_.front();
    propagating_.pop_front();
    pkt->ingress_port = cfg_.egress_port_label;
    sink_.receive(pkt);
  }
}

}  // namespace sprayer::sim

// Discrete-event scheduler core.
//
// Events are (time, sequence, target, tag): allocation-free, delivered to an
// IEventTarget virtual handler. The sequence number makes simultaneous
// events FIFO-ordered, which keeps runs deterministic.
#pragma once

#include <queue>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "common/units.hpp"

namespace sprayer::sim {

/// Anything that can receive scheduled events. The tag disambiguates
/// multiple pending events on one target.
class IEventTarget {
 public:
  virtual ~IEventTarget() = default;
  virtual void handle_event(u64 tag) = 0;
};

class EventQueue {
 public:
  void schedule(Time at, IEventTarget* target, u64 tag = 0) {
    SPRAYER_DCHECK(target != nullptr);
    heap_.push(Event{at, next_seq_++, target, tag});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] Time next_time() const {
    SPRAYER_CHECK(!heap_.empty());
    return heap_.top().time;
  }

  /// Pop the earliest event. Caller dispatches it.
  struct Popped {
    Time time;
    IEventTarget* target;
    u64 tag;
  };
  Popped pop() {
    SPRAYER_CHECK(!heap_.empty());
    const Event e = heap_.top();
    heap_.pop();
    return Popped{e.time, e.target, e.tag};
  }

 private:
  struct Event {
    Time time;
    u64 seq;
    IEventTarget* target;
    u64 tag;

    bool operator>(const Event& o) const noexcept {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  u64 next_seq_ = 0;
};

}  // namespace sprayer::sim

// Point-to-point simulated link: serialization at a configured rate, a
// bounded FIFO transmit queue (tail drop), and propagation delay. Two links
// in opposite directions model one cable.
#pragma once

#include <deque>
#include <string>

#include "common/types.hpp"
#include "common/units.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace sprayer::sim {

/// Receives packets at the far end of a link (or out of a NIC queue).
class IPacketSink {
 public:
  virtual ~IPacketSink() = default;
  virtual void receive(net::Packet* pkt) = 0;
};

struct LinkConfig {
  double rate_bps = 10e9;            // 10 GbE by default
  Time propagation_delay = 500 * kNanosecond;  // short DAC cable + PHY/DMA
  u32 queue_packets = 1024;          // transmit FIFO depth
  /// Ingress port value stamped on delivered packets.
  u8 egress_port_label = 0;
};

class Link final : public IEventTarget {
 public:
  Link(Simulator& sim, LinkConfig cfg, IPacketSink& sink, std::string name)
      : sim_(sim), cfg_(cfg), sink_(sink), name_(std::move(name)) {}

  /// Enqueue a packet for transmission. Takes ownership; frees the packet
  /// (back to its pool) when the transmit FIFO is full. Returns false on
  /// such a tail drop.
  bool send(net::Packet* pkt);

  void handle_event(u64 tag) override;

  struct Counters {
    u64 tx_packets = 0;
    u64 tx_bytes = 0;
    u64 dropped = 0;
  };
  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] u32 queue_depth() const noexcept {
    return static_cast<u32>(fifo_.size()) + (busy_ ? 1u : 0u);
  }

 private:
  enum : u64 { kTagTxDone = 1, kTagDeliver = 2 };

  void start_transmission(net::Packet* pkt);

  Simulator& sim_;
  LinkConfig cfg_;
  IPacketSink& sink_;
  std::string name_;

  std::deque<net::Packet*> fifo_;   // waiting behind the wire
  net::Packet* in_flight_ = nullptr;  // being serialized
  std::deque<net::Packet*> propagating_;  // serialized, in the cable (FIFO)
  bool busy_ = false;
  Counters counters_;
};

}  // namespace sprayer::sim

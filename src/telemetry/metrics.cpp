#include "telemetry/metrics.hpp"

namespace sprayer::telemetry {

void MetricsRegistry::check_name_free(const std::string& name) const {
  for (const auto& s : scalars_) {
    SPRAYER_CHECK_MSG(s.name != name, "duplicate metric name");
  }
  for (const auto& h : hists_) {
    SPRAYER_CHECK_MSG(h.name != name, "duplicate metric name");
  }
  for (const auto& f : fn_gauges_) {
    SPRAYER_CHECK_MSG(f.name != name, "duplicate metric name");
  }
}

u32 MetricsRegistry::register_scalar(std::string name, MetricKind kind) {
  SPRAYER_CHECK_MSG(!finalized_, "metric registered after finalize()");
  check_name_free(name);
  scalars_.push_back(ScalarInfo{std::move(name), kind});
  return static_cast<u32>(scalars_.size() - 1);
}

Histogram MetricsRegistry::histogram(std::string name,
                                     unsigned significant_bits) {
  SPRAYER_CHECK_MSG(!finalized_, "metric registered after finalize()");
  check_name_free(name);
  HistInfo info{std::move(name), LogHistogram(significant_bits), hist_slots_};
  hist_slots_ += static_cast<u32>(info.proto.num_buckets());
  hists_.push_back(std::move(info));
  return Histogram{this, static_cast<u32>(hists_.size() - 1)};
}

void MetricsRegistry::finalize() {
  SPRAYER_CHECK_MSG(!finalized_, "finalize() called twice");
  scalar_lines_per_shard_ = (scalars_.size() + 7) / 8;
  if (scalar_lines_per_shard_ > 0) {
    scalar_lines_ =
        std::make_unique<CellLine[]>(scalar_lines_per_shard_ * num_shards_);
  }
  hist_lines_per_shard_ = (static_cast<std::size_t>(hist_slots_) + 7) / 8;
  if (hist_lines_per_shard_ > 0) {
    hist_lines_ =
        std::make_unique<CellLine[]>(hist_lines_per_shard_ * num_shards_);
  }
  finalized_ = true;
}

}  // namespace sprayer::telemetry

// Epoch snapshot collector: merges a MetricsRegistry's per-core shards into
// one consistent TelemetrySnapshot without stopping the workers.
//
// Consistency contract:
//  - Per-cell: every read is an untorn atomic load; counter cells only grow,
//    so counter values are monotonic across snapshots unconditionally.
//  - Per-shard: the collector copies a shard's cells between two reads of
//    the shard's update sequence (seqlock). If a writer's
//    begin_update/end_update window overlapped the copy, the sequence
//    differs (or is odd) and the copy retries — so related cells updated
//    inside one window (e.g. rx_packets and tx_packets for the same burst)
//    land in the snapshot together. Retries are bounded: after
//    kMaxShardRetries failed passes (a shard under continuous load) the
//    last copy is kept and the snapshot is marked `consistent = false`;
//    values are still untorn and monotonic, only the cross-cell alignment
//    of that shard is best-effort.
//  - Cross-shard: no global barrier; shards are copied one after another.
#pragma once

#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "common/relaxed.hpp"
#include "common/units.hpp"
#include "telemetry/metrics.hpp"

namespace sprayer::telemetry {

struct ScalarSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  u64 total = 0;               // sum (counter/gauge) or max (kGaugeMax)
  std::vector<u64> per_shard;  // one value per shard
};

struct HistogramSnapshot {
  std::string name;
  LogHistogram merged;  // all shards folded together
};

struct TelemetrySnapshot {
  u64 epoch = 0;           // collector invocation count
  Time taken_at = 0;       // steady_now() at collection
  bool consistent = true;  // false if any shard exhausted its retries
  u32 num_shards = 0;
  u32 inconsistent_shards = 0;  // shards kept as best-effort copies
  std::vector<ScalarSnapshot> scalars;
  std::vector<HistogramSnapshot> histograms;

  [[nodiscard]] const ScalarSnapshot* find(const std::string& name) const {
    for (const auto& s : scalars) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }
  [[nodiscard]] u64 value(const std::string& name) const {
    const auto* s = find(name);
    return s == nullptr ? 0 : s->total;
  }
  [[nodiscard]] const HistogramSnapshot* find_histogram(
      const std::string& name) const {
    for (const auto& h : histograms) {
      if (h.name == name) return &h;
    }
    return nullptr;
  }
};

class SnapshotCollector {
 public:
  static constexpr u32 kMaxShardRetries = 8;

  explicit SnapshotCollector(const MetricsRegistry& reg) : reg_(reg) {}

  /// Collect one snapshot. Safe to call from any single thread concurrently
  /// with shard writers; allocation-heavy (per-metric vectors), so this is a
  /// housekeeping/collector-thread operation, never a hot-path one.
  [[nodiscard]] TelemetrySnapshot collect();

  [[nodiscard]] u64 epochs() const noexcept { return epoch_; }
  [[nodiscard]] u64 retries() const noexcept { return retries_; }
  [[nodiscard]] u64 inconsistent_shards() const noexcept {
    return inconsistent_; }
  /// Snapshots that came back consistent=false. A relaxed cell: gauge_fn
  /// probes (telemetry.snapshot.inconsistent) read it from whatever thread
  /// is collecting while this collector's owner keeps collecting.
  [[nodiscard]] u64 inconsistent_snapshots() const noexcept {
    return inconsistent_snapshots_;
  }

 private:
  const MetricsRegistry& reg_;
  u64 epoch_ = 0;
  u64 retries_ = 0;       // seqlock copy passes that had to restart
  u64 inconsistent_ = 0;  // shards that fell back to best-effort copies
  RelaxedU64 inconsistent_snapshots_;
};

}  // namespace sprayer::telemetry

// Spray-reorder observatory: measures the packet reordering that spraying
// introduces, with sampled, bounded-memory per-flow sequence tracking.
//
// Mechanics: the injection driver stamps a per-flow sequence number into
// `Packet::user_tag` for up to kSlots sampled flows (first-come flow-hash
// claim — memory is bounded by construction, not by traffic). At the tx
// boundary the observatory checks each stamped packet against the highest
// sequence already seen for its flow: a packet arriving below that
// high-water mark is out of order, and `high_water - seq` is its reorder
// distance (how many later packets of the same flow overtook it, an upper
// bound in the presence of drops).
//
// Under per-flow RSS every data packet of a flow traverses one rx ring, one
// core and one tx call in FIFO order, so the observatory reads zero; under
// spraying, packets of one flow ride different queues and the out-of-order
// degree is the price of packet-level parallelism the paper's §4 discusses.
//
// Thread contract: stamp() is driver-side (single thread). observe() runs
// on any worker at tx time and takes a per-flow spinlock — sampled flows
// only, so the cost is bounded and off the path entirely when disabled.
#pragma once

#include <array>
#include <atomic>
#include <span>

#include "common/histogram.hpp"
#include "common/types.hpp"
#include "net/packet.hpp"

namespace sprayer::telemetry {

class ReorderObservatory {
 public:
  static constexpr u32 kSlots = 64;        // sampled flows (bounded memory)
  static constexpr u64 kStampFlag = 1ULL << 63;
  static constexpr unsigned kSlotShift = 48;  // slot index in bits 48..53
  static constexpr u64 kSeqMask = (1ULL << kSlotShift) - 1;

  struct Stats {
    u64 flows_tracked = 0;
    u64 packets_stamped = 0;
    u64 packets_observed = 0;
    u64 ooo_packets = 0;    // arrived below their flow's high-water seq
    u64 max_distance = 0;   // largest observed reorder distance
    LogHistogram distance;  // distance distribution over ooo packets
    Stats() : distance(5) {}
  };

  /// Driver side: claim-or-match the packet's flow into a sample slot and
  /// stamp the next per-flow sequence number. No-op for packets without a
  /// memoized flow hash or for flows that lost the slot race.
  void stamp(net::Packet& pkt) noexcept {
    if (!pkt.has_flow_hash()) return;
    const u32 hash = pkt.flow_hash();
    const u32 slot = hash % kSlots;
    RxSlot& rx = rx_slots_[slot];
    if (!rx.claimed) {
      rx.claimed = true;
      rx.owner = hash;
      ++flows_tracked_;
    } else if (rx.owner != hash) {
      return;  // slot taken by another flow: this flow is not sampled
    }
    // Sequences start at 1 so seq 0 never collides with the tx-side
    // high-water initial value.
    pkt.user_tag = kStampFlag | (static_cast<u64>(slot) << kSlotShift) |
                   (++rx.next_seq & kSeqMask);
    ++packets_stamped_;
  }

  /// Tx side (any worker): fold a batch of outgoing packets into the
  /// per-flow reorder state. Unstamped packets are skipped without locking.
  void observe(std::span<net::Packet* const> pkts) noexcept {
    for (const net::Packet* pkt : pkts) {
      const u64 tag = pkt->user_tag;
      if ((tag & kStampFlag) == 0) continue;
      const u32 slot =
          static_cast<u32>((tag >> kSlotShift) & (kSlots - 1));
      const u64 seq = tag & kSeqMask;
      TxSlot& tx = tx_slots_[slot];
      tx.lock();
      if (seq > tx.high_water) {
        tx.high_water = seq;
      } else {
        const u64 distance = tx.high_water - seq;
        ++tx.ooo_packets;
        if (distance > tx.max_distance) tx.max_distance = distance;
        tx.distance.add(distance);
      }
      ++tx.observed;
      tx.unlock();
    }
  }

  /// One sampled flow's reorder state (all-zero with sampled=false when the
  /// flow lost the slot race or was never stamped). Per-flow back-pressure
  /// sensor for the adaptive spray policy: max_distance exceeding a flow's
  /// reorder budget narrows its spray set (DESIGN.md §12).
  ///
  /// Thread contract: call from the stamping (driver) thread only — it
  /// reads the driver-private rx slot table; the tx-side counters are read
  /// under the slot spinlock, safe concurrently with observe().
  struct FlowReorder {
    bool sampled = false;
    u64 observed = 0;
    u64 ooo_packets = 0;
    u64 max_distance = 0;
  };
  [[nodiscard]] FlowReorder flow_stats(u32 flow_hash) const noexcept {
    FlowReorder out;
    const u32 slot = flow_hash % kSlots;
    const RxSlot& rx = rx_slots_[slot];
    if (!rx.claimed || rx.owner != flow_hash) return out;
    out.sampled = true;
    auto& tx = const_cast<TxSlot&>(tx_slots_[slot]);
    tx.lock();
    out.observed = tx.observed;
    out.ooo_packets = tx.ooo_packets;
    out.max_distance = tx.max_distance;
    tx.unlock();
    return out;
  }

  /// Collector side: merge all slots. Takes each slot's spinlock briefly;
  /// safe concurrently with observe().
  [[nodiscard]] Stats stats() const {
    Stats out;
    out.flows_tracked = flows_tracked_;
    out.packets_stamped = packets_stamped_;
    for (const TxSlot& slot : tx_slots_) {
      auto& tx = const_cast<TxSlot&>(slot);
      tx.lock();
      out.packets_observed += tx.observed;
      out.ooo_packets += tx.ooo_packets;
      if (tx.max_distance > out.max_distance) {
        out.max_distance = tx.max_distance;
      }
      out.distance.merge(tx.distance);
      tx.unlock();
    }
    return out;
  }

 private:
  struct RxSlot {  // driver-private: no synchronization needed
    u32 owner = 0;
    bool claimed = false;
    u64 next_seq = 0;
  };
  struct alignas(kCacheLineSize) TxSlot {
    std::atomic_flag busy = ATOMIC_FLAG_INIT;
    u64 high_water = 0;
    u64 observed = 0;
    u64 ooo_packets = 0;
    u64 max_distance = 0;
    LogHistogram distance{5};

    void lock() noexcept {
      while (busy.test_and_set(std::memory_order_acquire)) {
      }
    }
    void unlock() noexcept { busy.clear(std::memory_order_release); }
  };

  std::array<RxSlot, kSlots> rx_slots_{};
  u64 flows_tracked_ = 0;
  u64 packets_stamped_ = 0;
  std::array<TxSlot, kSlots> tx_slots_{};
};

}  // namespace sprayer::telemetry

// Flow-record export (DESIGN.md §13): IPFIX/NetFlow-style per-flow
// accounting and a live JSON-lines export stream ("sprayer.flowexport.v1").
//
// Two halves with a strict thread split:
//
//   * FlowRecorder — one per core, single writer (the owning worker). A
//     direct-mapped table of cache-line-sized record slots keyed by the
//     memoized RSS flow hash. The worker's account() is a handful of
//     relaxed loads/stores on a core-private line; no RMW, no locks. Slot
//     reuse is generation-stamped so the harvesting driver can detect a
//     record that changed identity mid-read and skip it (seqlock-lite: the
//     packed {hash:32 | gen:32} key is read before and after the fields).
//     Colliding flows never displace a live incumbent — only one idle past
//     the configured timeout — so a hot record is stable for its lifetime
//     and eviction churn is bounded by the idle timeout, not the load.
//
//   * LiveExporter — driver-thread only. On the driver maintenance tick it
//     harvests every recorder table, turns per-core monotonic totals into
//     deltas via a private mirror, aggregates them per flow across cores,
//     and emits JSON-lines flow records on idle expiry ("idle"), at a
//     periodic interval while the flow grows ("interval"), and at shutdown
//     ("final"). Emission is budgeted per tick (max_records_per_tick);
//     flows over budget keep aggregating and are offered again next tick.
//     The same stream carries periodic registry-snapshot lines (collected
//     through the standard seqlock SnapshotCollector, `consistent` flag
//     propagated) so one tail -f shows flows and system counters together.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/relaxed.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/observability_config.hpp"
#include "telemetry/snapshot.hpp"

#include <atomic>

namespace sprayer::telemetry {

/// Per-core flow-record table. Single writer (the owning worker core);
/// harvested by the driver through read(). See file comment for the slot
/// reuse protocol.
class FlowRecorder {
 public:
  /// Driver-side view of one slot; key == 0 means empty or unstable
  /// (changed identity mid-read — the next harvest picks it up).
  struct SlotView {
    u64 key = 0;  // {hash:32 | gen:32}
    u64 packets = 0;
    u64 bytes = 0;
    Time first = 0;
    Time last = 0;
    u8 tcp_flags = 0;

    [[nodiscard]] u32 hash() const noexcept {
      return static_cast<u32>(key >> 32);
    }
  };

  FlowRecorder(u32 slots, Time idle_timeout)
      : mask_(slots - 1),
        idle_timeout_(idle_timeout),
        slots_(new Slot[slots]) {
    SPRAYER_CHECK_MSG(slots >= 2 && (slots & (slots - 1)) == 0,
                      "flow-record table slots must be a power of two");
  }

  FlowRecorder(const FlowRecorder&) = delete;
  FlowRecorder& operator=(const FlowRecorder&) = delete;

  /// Worker side: account one packet. `tcp_flags` is the raw TCP flag byte
  /// (0 for non-TCP); `now` is the batch timestamp.
  void account(u32 hash, u32 bytes, u8 tcp_flags, Time now) noexcept {
    Slot& s = slots_[hash & mask_];
    const u64 k = s.key.load(std::memory_order_relaxed);
    if (k == 0 || static_cast<u32>(k >> 32) != hash) {
      if (k != 0) {
        // Collision: displace only an idle incumbent. A live flow keeps
        // its record; the newcomer goes uncounted (flow_export.untracked).
        if (now - s.last.load(std::memory_order_relaxed) < idle_timeout_) {
          ++untracked_;
          return;
        }
        ++evictions_;
      }
      claim(s, hash, static_cast<u32>(k), now);
    }
    s.packets.store(s.packets.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
    s.bytes.store(s.bytes.load(std::memory_order_relaxed) + bytes,
                  std::memory_order_relaxed);
    if (tcp_flags != 0) {
      s.tcp_flags.store(s.tcp_flags.load(std::memory_order_relaxed) |
                            tcp_flags,
                        std::memory_order_relaxed);
    }
    s.last.store(now, std::memory_order_relaxed);
    ++packets_;
  }

  /// Driver side: racy-but-validated read of one slot. Fields are untorn
  /// relaxed loads bracketed by two key reads; a key change in between
  /// (slot stolen mid-read) yields an empty view.
  [[nodiscard]] SlotView read(u32 i) const noexcept {
    const Slot& s = slots_[i];
    SlotView v;
    const u64 k1 = s.key.load(std::memory_order_acquire);
    if (k1 == 0) return v;
    v.packets = s.packets.load(std::memory_order_relaxed);
    v.bytes = s.bytes.load(std::memory_order_relaxed);
    v.first = s.first.load(std::memory_order_relaxed);
    v.last = s.last.load(std::memory_order_relaxed);
    v.tcp_flags =
        static_cast<u8>(s.tcp_flags.load(std::memory_order_relaxed));
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.key.load(std::memory_order_relaxed) != k1) return SlotView{};
    v.key = k1;
    return v;
  }

  [[nodiscard]] u32 slots() const noexcept { return mask_ + 1; }
  /// Packets accounted by this core (cross-thread readable).
  [[nodiscard]] u64 packets() const noexcept { return packets_; }
  /// Packets of flows that lost the slot collision to a live incumbent.
  [[nodiscard]] u64 untracked() const noexcept { return untracked_; }
  /// Idle incumbents displaced by a colliding new flow.
  [[nodiscard]] u64 evictions() const noexcept { return evictions_; }

 private:
  struct alignas(kCacheLineSize) Slot {
    std::atomic<u64> key{0};  // {hash:32 | gen:32}; gen == 0 never stored
    std::atomic<u64> packets{0};
    std::atomic<u64> bytes{0};
    std::atomic<u64> first{0};
    std::atomic<u64> last{0};
    std::atomic<u64> tcp_flags{0};
  };

  void claim(Slot& s, u32 hash, u32 old_gen, Time now) noexcept {
    // Zero the key first so a concurrent harvest read spanning the reset
    // observes the identity change; the release store of the new key then
    // publishes the reset fields as a unit.
    s.key.store(0, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    s.packets.store(0, std::memory_order_relaxed);
    s.bytes.store(0, std::memory_order_relaxed);
    s.tcp_flags.store(0, std::memory_order_relaxed);
    s.first.store(now, std::memory_order_relaxed);
    s.last.store(now, std::memory_order_relaxed);
    u32 gen = old_gen + 1;
    if (gen == 0) gen = 1;
    s.key.store((static_cast<u64>(hash) << 32) | gen,
                std::memory_order_release);
  }

  u32 mask_;
  Time idle_timeout_;
  std::unique_ptr<Slot[]> slots_;
  RelaxedU64 packets_;
  RelaxedU64 untracked_;
  RelaxedU64 evictions_;
};

/// Driver-tick export hook: harvests all FlowRecorders, aggregates per-flow
/// deltas across cores, and streams flow records + registry snapshots as
/// JSON lines. Driver thread only (same single-thread contract as
/// AdaptiveSprayPolicy); stats fields are relaxed cells so gauge_fn probes
/// may read them from a snapshotting thread.
class LiveExporter {
 public:
  /// Placement/reorder context resolved per flow at emission time (on the
  /// driver thread — safe for AdaptiveSprayPolicy and ReorderObservatory
  /// flow queries, whose read contracts are driver-thread-only).
  struct FlowInfo {
    const char* placement = "rss";  // "pinned" | "sprayed" | "rss"
    bool ooo_sampled = false;
    u64 ooo_max = 0;
  };
  using FlowInfoFn = std::function<FlowInfo(u32 flow_hash)>;

  struct Stats {
    RelaxedU64 harvests;          // driver ticks that ran a harvest
    RelaxedU64 flows_seen;        // distinct flow aggregations created
    RelaxedU64 records;           // flow records emitted (all reasons)
    RelaxedU64 idle_records;      // reason == "idle"
    RelaxedU64 interval_records;  // reason == "interval"
    RelaxedU64 final_records;     // reason == "final"
    RelaxedU64 deferred;          // emissions pushed past a tick budget
    RelaxedU64 snapshots;         // snapshot lines emitted
    RelaxedU64 inconsistent_snapshots;  // snapshot lines, consistent=false
  };

  LiveExporter(const FlowExportConfig& cfg, const MetricsRegistry& registry);
  ~LiveExporter();

  LiveExporter(const LiveExporter&) = delete;
  LiveExporter& operator=(const LiveExporter&) = delete;

  /// Wiring (all before traffic). Recorders are indexed by core.
  void add_recorder(const FlowRecorder* recorder);
  /// Output stream for JSON lines (nullptr: records are produced and
  /// counted but not written). Not owned; must outlive the exporter.
  void set_sink(std::ostream* sink) noexcept { sink_ = sink; }
  void set_flow_info(FlowInfoFn fn) { flow_info_ = std::move(fn); }
  /// Register gauge_fn probes (flow_export.*). The registry allows fn
  /// gauges after finalize(); call before any snapshot collection runs.
  void register_metrics(MetricsRegistry& registry);

  /// Driver tick: harvest + budgeted emission when harvest_interval
  /// elapsed. Cheap when not due (one compare).
  void maybe_tick(Time now) {
    if (now - last_tick_ >= cfg_.harvest_interval) tick(now);
  }
  void tick(Time now);

  /// Shutdown: harvest once more and emit every live flow with reason
  /// "final" plus a last snapshot line, ignoring the per-tick budget.
  void flush_final(Time now);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  /// Flows currently aggregated (not yet idle-expired).
  [[nodiscard]] u64 live_flows() const noexcept { return live_flows_; }
  [[nodiscard]] const FlowExportConfig& config() const noexcept {
    return cfg_;
  }
  /// Packets accounted across all recorders minus collision losses.
  [[nodiscard]] u64 recorder_packets() const noexcept;
  [[nodiscard]] u64 recorder_untracked() const noexcept;
  [[nodiscard]] u64 recorder_evictions() const noexcept;

 private:
  struct MirrorSlot {  // last-harvested totals for one recorder slot
    u64 key = 0;
    u64 packets = 0;
    u64 bytes = 0;
  };
  struct FlowAgg {  // per-flow aggregation across cores
    u64 packets = 0;
    u64 bytes = 0;
    Time first = 0;
    Time last = 0;
    u8 tcp_flags = 0;
    u64 core_mask = 0;
    u64 emitted_packets = 0;  // cumulative totals at last emission
    u64 emitted_bytes = 0;
    Time last_emit = 0;  // 0: never emitted
  };

  void harvest();
  /// Walk the aggregation map emitting due records under `budget`.
  void sweep(Time now, u32 budget, bool final_pass);
  void emit_record(u32 hash, FlowAgg& flow, const char* reason, Time now);
  void emit_snapshot(Time now, bool final_pass);

  const FlowExportConfig cfg_;
  const MetricsRegistry& registry_;
  SnapshotCollector collector_;
  std::vector<const FlowRecorder*> recorders_;        // [core]
  std::vector<std::vector<MirrorSlot>> mirrors_;      // [core][slot]
  std::unordered_map<u32, FlowAgg> flows_;
  FlowInfoFn flow_info_;
  std::ostream* sink_ = nullptr;
  Time last_tick_ = 0;
  Time last_snapshot_ = 0;
  Stats stats_;
  RelaxedU64 live_flows_;
  // Previous snapshot's counter totals, for the cross-epoch monotonicity
  // assertion (satellite of DESIGN.md §13).
  TelemetrySnapshot prev_snapshot_;
  bool have_prev_snapshot_ = false;
};

}  // namespace sprayer::telemetry

#include "telemetry/json_exporter.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

namespace sprayer::telemetry {

void write_json_string(std::ostream& os, std::string_view s) {
  static const char* kHex = "0123456789abcdef";
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default: {
        const auto u = static_cast<unsigned char>(c);
        if (u < 0x20) {
          os << "\\u00" << kHex[u >> 4] << kHex[u & 0xf];
        } else {
          os << c;
        }
      }
    }
  }
  os << '"';
}

namespace {

void write_name(std::ostream& os, const std::string& name) {
  // Metric names are registry-controlled identifiers (letters, digits,
  // '.', '_', '/'); escape defensively anyway so output is always valid.
  write_json_string(os, name);
}

void write_shards(std::ostream& os, const std::vector<u64>& per_shard) {
  os << "[";
  for (std::size_t i = 0; i < per_shard.size(); ++i) {
    if (i != 0) os << ", ";
    os << per_shard[i];
  }
  os << "]";
}

void write_scalar_section(std::ostream& os, const TelemetrySnapshot& snap,
                          bool counters) {
  bool first = true;
  for (const auto& s : snap.scalars) {
    if ((s.kind == MetricKind::kCounter) != counters) continue;
    if (!first) os << ",";
    first = false;
    os << "\n    ";
    write_name(os, s.name);
    os << ": {";
    if (!counters) {
      os << "\"kind\": \"" << to_string(s.kind) << "\", ";
    }
    os << "\"total\": " << s.total;
    if (!s.per_shard.empty()) {
      os << ", \"per_shard\": ";
      write_shards(os, s.per_shard);
    }
    os << "}";
  }
  if (!first) os << "\n  ";
}

void write_hist_section(std::ostream& os, const TelemetrySnapshot& snap) {
  bool first = true;
  for (const auto& h : snap.histograms) {
    if (!first) os << ",";
    first = false;
    const LogHistogram& m = h.merged;
    os << "\n    ";
    write_name(os, h.name);
    os << ": {\"count\": " << m.count() << ", \"min\": " << m.min()
       << ", \"max\": " << m.max() << ", \"mean\": " << m.mean()
       << ", \"p50\": " << m.p50() << ", \"p90\": " << m.p90()
       << ", \"p99\": " << m.p99() << ", \"p999\": " << m.p999() << "}";
  }
  if (!first) os << "\n  ";
}

}  // namespace

void JsonExporter::write(std::ostream& os, const TelemetrySnapshot& snap,
                         const ReorderObservatory::Stats* reorder) {
  // Hand-built snapshots (tests) may predate the num_shards field; fall
  // back to the first scalar's shard vector.
  const u32 shards =
      snap.num_shards != 0
          ? snap.num_shards
          : (snap.scalars.empty()
                 ? 0
                 : static_cast<u32>(snap.scalars[0].per_shard.size()));
  os << "{\n";
  os << "  \"schema\": \"sprayer.telemetry.v1\",\n";
  os << "  \"epoch\": " << snap.epoch << ",\n";
  os << "  \"taken_at_ps\": " << snap.taken_at << ",\n";
  os << "  \"consistent\": " << (snap.consistent ? "true" : "false") << ",\n";
  os << "  \"inconsistent_shards\": " << snap.inconsistent_shards << ",\n";
  os << "  \"num_shards\": " << shards << ",\n";
  os << "  \"counters\": {";
  write_scalar_section(os, snap, /*counters=*/true);
  os << "},\n";
  os << "  \"gauges\": {";
  write_scalar_section(os, snap, /*counters=*/false);
  os << "},\n";
  os << "  \"histograms\": {";
  write_hist_section(os, snap);
  os << "}";
  if (reorder != nullptr) {
    const double fraction =
        reorder->packets_observed == 0
            ? 0.0
            : static_cast<double>(reorder->ooo_packets) /
                  static_cast<double>(reorder->packets_observed);
    os << ",\n  \"reorder\": {";
    os << "\n    \"flows_tracked\": " << reorder->flows_tracked << ",";
    os << "\n    \"packets_stamped\": " << reorder->packets_stamped << ",";
    os << "\n    \"packets_observed\": " << reorder->packets_observed << ",";
    os << "\n    \"ooo_packets\": " << reorder->ooo_packets << ",";
    os << "\n    \"ooo_fraction\": " << fraction << ",";
    os << "\n    \"max_distance\": " << reorder->max_distance << ",";
    os << "\n    \"distance_p50\": " << reorder->distance.p50() << ",";
    os << "\n    \"distance_p99\": " << reorder->distance.p99();
    os << "\n  }";
  }
  os << "\n}\n";
}

std::string JsonExporter::to_json(const TelemetrySnapshot& snap,
                                  const ReorderObservatory::Stats* reorder) {
  std::ostringstream os;
  write(os, snap, reorder);
  return os.str();
}

void JsonExporter::check_counters_monotonic(const TelemetrySnapshot& prev,
                                            const TelemetrySnapshot& cur) {
  for (const auto& p : prev.scalars) {
    if (p.kind != MetricKind::kCounter) continue;
    const ScalarSnapshot* c = cur.find(p.name);
    if (c == nullptr || c->kind != MetricKind::kCounter) continue;
    SPRAYER_CHECK_MSG(c->total >= p.total,
                      "counter went backwards across exported epochs");
    const std::size_t shards =
        std::min(p.per_shard.size(), c->per_shard.size());
    for (std::size_t s = 0; s < shards; ++s) {
      SPRAYER_CHECK_MSG(c->per_shard[s] >= p.per_shard[s],
                        "counter shard went backwards across exported epochs");
    }
  }
}

bool JsonExporter::write_file(const std::string& path,
                              const TelemetrySnapshot& snap,
                              const ReorderObservatory::Stats* reorder) {
  std::ofstream out(path);
  if (!out) return false;
  write(out, snap, reorder);
  return out.good();
}

}  // namespace sprayer::telemetry

// TelemetrySnapshot → JSON, in the same artifact family as the repo's
// BENCH_*.json files so runtime telemetry and bench results share one
// trajectory (and one schema checker: tools/check_telemetry_schema.py).
//
// Schema "sprayer.telemetry.v1":
//   {
//     "schema": "sprayer.telemetry.v1",
//     "epoch": <u64>, "taken_at_ps": <u64>, "consistent": <bool>,
//     "num_shards": <u32>,
//     "counters":   { name: {"total": u64, "per_shard": [u64...]}, ... },
//     "gauges":     { name: {"kind": "gauge"|"max"|"fn", "total": u64,
//                            "per_shard": [u64...]?}, ... },
//     "histograms": { name: {"count","min","max","mean",
//                            "p50","p90","p99","p999"}, ... },
//     "reorder":    { "flows_tracked", "packets_stamped",
//                     "packets_observed", "ooo_packets", "ooo_fraction",
//                     "max_distance", "distance_p50", "distance_p99" }?
//   }
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "telemetry/reorder.hpp"
#include "telemetry/snapshot.hpp"

namespace sprayer::telemetry {

/// Write `s` as a JSON string literal (quotes included) with full escaping:
/// quote, backslash, and every control character below 0x20. Shared by the
/// snapshot exporter and the flow-export stream writer.
void write_json_string(std::ostream& os, std::string_view s);

class JsonExporter {
 public:
  /// Pretty-printed snapshot document. `reorder` is optional (nullptr →
  /// section omitted).
  [[nodiscard]] static std::string to_json(
      const TelemetrySnapshot& snap,
      const ReorderObservatory::Stats* reorder = nullptr);

  static void write(std::ostream& os, const TelemetrySnapshot& snap,
                    const ReorderObservatory::Stats* reorder = nullptr);

  /// Write to a file; returns false (and writes nothing) on I/O failure.
  static bool write_file(const std::string& path,
                         const TelemetrySnapshot& snap,
                         const ReorderObservatory::Stats* reorder = nullptr);

  /// Assert that no counter present in both snapshots went backwards
  /// between consecutive exported epochs (counter cells only grow; a
  /// regression means torn reads or shard miswiring). Throws via
  /// SPRAYER_CHECK on violation.
  static void check_counters_monotonic(const TelemetrySnapshot& prev,
                                       const TelemetrySnapshot& cur);
};

}  // namespace sprayer::telemetry

#include "telemetry/trace.hpp"

namespace sprayer::telemetry {

void PathTracer::register_metrics(MetricsRegistry& registry) {
  steer_ns_ = registry.histogram("trace.steer_ns", 5);
  queue_ns_ = registry.histogram("trace.queue_ns", 5);
  nf_ns_ = registry.histogram("trace.nf_ns", 5);
  completed_ = registry.counter("trace.completed");
  registry.gauge_fn("trace.sampled", [this] { return sampled_.load(); });
}

}  // namespace sprayer::telemetry

#include "telemetry/snapshot.hpp"

#include <atomic>
#include <chrono>

namespace sprayer::telemetry {

namespace {

Time steady_now() {
  return static_cast<Time>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) *
         kNanosecond;
}

}  // namespace

TelemetrySnapshot SnapshotCollector::collect() {
  TelemetrySnapshot snap;
  snap.epoch = ++epoch_;
  snap.taken_at = steady_now();
  snap.num_shards = reg_.num_shards();

  const auto& scalars = reg_.scalar_info();
  const auto& hists = reg_.hist_info();
  const u32 shards = reg_.num_shards();
  const u32 hist_slots = reg_.hist_slots();

  snap.scalars.reserve(scalars.size() + reg_.fn_gauges().size());
  for (const auto& s : scalars) {
    ScalarSnapshot out;
    out.name = s.name;
    out.kind = s.kind;
    out.per_shard.assign(shards, 0);
    snap.scalars.push_back(std::move(out));
  }
  snap.histograms.reserve(hists.size());
  for (const auto& h : hists) {
    snap.histograms.push_back(
        HistogramSnapshot{h.name, LogHistogram(h.proto.significant_bits())});
  }

  // Per-shard seqlock copy: scalar cells and histogram buckets for one shard
  // are captured together so cells updated inside one writer window agree.
  std::vector<u64> scalar_buf(scalars.size());
  std::vector<u64> hist_buf(hist_slots);
  for (u32 shard = 0; shard < shards; ++shard) {
    const auto& seq = reg_.shard_seq(shard);
    bool clean = false;
    for (u32 attempt = 0; attempt <= kMaxShardRetries; ++attempt) {
      const u64 s1 = seq.load(std::memory_order_acquire);
      for (std::size_t i = 0; i < scalar_buf.size(); ++i) {
        scalar_buf[i] = reg_.scalar_cell(shard, static_cast<u32>(i));
      }
      for (u32 i = 0; i < hist_slots; ++i) {
        hist_buf[i] = reg_.hist_cell(shard, i);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      const u64 s2 = seq.load(std::memory_order_relaxed);
      if ((s1 & 1) == 0 && s1 == s2) {
        clean = true;
        break;
      }
      ++retries_;
    }
    if (!clean) {
      // Shard under continuous load: keep the last (untorn, monotonic) copy
      // but flag that cross-cell alignment is best-effort.
      snap.consistent = false;
      ++snap.inconsistent_shards;
      ++inconsistent_;
    }

    for (std::size_t i = 0; i < scalar_buf.size(); ++i) {
      snap.scalars[i].per_shard[shard] = scalar_buf[i];
      if (snap.scalars[i].kind == MetricKind::kGaugeMax) {
        if (scalar_buf[i] > snap.scalars[i].total) {
          snap.scalars[i].total = scalar_buf[i];
        }
      } else {
        snap.scalars[i].total += scalar_buf[i];
      }
    }
    for (std::size_t h = 0; h < hists.size(); ++h) {
      const u32 offset = hists[h].offset;
      const u32 n = static_cast<u32>(hists[h].proto.num_buckets());
      for (u32 b = 0; b < n; ++b) {
        snap.histograms[h].merged.add_bucket(b, hist_buf[offset + b]);
      }
    }
  }

  for (const auto& fg : reg_.fn_gauges()) {
    ScalarSnapshot out;
    out.name = fg.name;
    out.kind = MetricKind::kGaugeFn;
    out.total = fg.fn();
    snap.scalars.push_back(std::move(out));
  }
  if (!snap.consistent) ++inconsistent_snapshots_;
  return snap;
}

}  // namespace sprayer::telemetry

#include "telemetry/flow_export.hpp"

#include <ostream>

#include "telemetry/json_exporter.hpp"

namespace sprayer::telemetry {

LiveExporter::LiveExporter(const FlowExportConfig& cfg,
                           const MetricsRegistry& registry)
    : cfg_(cfg), registry_(registry), collector_(registry) {
  SPRAYER_CHECK_MSG(cfg_.harvest_interval > 0,
                    "flow export needs a non-zero harvest interval");
  SPRAYER_CHECK_MSG(cfg_.export_interval > 0 && cfg_.idle_timeout > 0,
                    "flow export intervals must be non-zero");
  SPRAYER_CHECK_MSG(cfg_.max_records_per_tick > 0,
                    "flow export needs a non-zero per-tick record budget");
}

LiveExporter::~LiveExporter() = default;

void LiveExporter::add_recorder(const FlowRecorder* recorder) {
  SPRAYER_CHECK(recorder != nullptr);
  recorders_.push_back(recorder);
  mirrors_.emplace_back(recorder->slots());
}

void LiveExporter::register_metrics(MetricsRegistry& registry) {
  registry.gauge_fn("flow_export.records",
                    [this] { return stats_.records.load(); });
  registry.gauge_fn("flow_export.flows_live",
                    [this] { return live_flows_.load(); });
  registry.gauge_fn("flow_export.deferred",
                    [this] { return stats_.deferred.load(); });
  registry.gauge_fn("flow_export.snapshots",
                    [this] { return stats_.snapshots.load(); });
  registry.gauge_fn("flow_export.untracked",
                    [this] { return recorder_untracked(); });
  registry.gauge_fn("flow_export.evictions",
                    [this] { return recorder_evictions(); });
}

u64 LiveExporter::recorder_packets() const noexcept {
  u64 n = 0;
  for (const FlowRecorder* r : recorders_) n += r->packets();
  return n;
}

u64 LiveExporter::recorder_untracked() const noexcept {
  u64 n = 0;
  for (const FlowRecorder* r : recorders_) n += r->untracked();
  return n;
}

u64 LiveExporter::recorder_evictions() const noexcept {
  u64 n = 0;
  for (const FlowRecorder* r : recorders_) n += r->evictions();
  return n;
}

void LiveExporter::harvest() {
  for (std::size_t c = 0; c < recorders_.size(); ++c) {
    const FlowRecorder& rec = *recorders_[c];
    auto& mirror = mirrors_[c];
    for (u32 i = 0; i < rec.slots(); ++i) {
      const FlowRecorder::SlotView v = rec.read(i);
      if (v.key == 0) continue;  // empty or mid-steal: next harvest
      MirrorSlot& m = mirror[i];
      if (m.key != v.key) m = MirrorSlot{v.key, 0, 0};
      const u64 dp = v.packets - m.packets;
      const u64 db = v.bytes - m.bytes;
      if (dp == 0 && db == 0) continue;
      m.packets = v.packets;
      m.bytes = v.bytes;
      auto [it, inserted] = flows_.try_emplace(v.hash());
      FlowAgg& f = it->second;
      if (inserted) ++stats_.flows_seen;
      f.packets += dp;
      f.bytes += db;
      f.tcp_flags |= v.tcp_flags;
      if (v.first != 0 && (f.first == 0 || v.first < f.first)) {
        f.first = v.first;
      }
      if (v.last > f.last) f.last = v.last;
      f.core_mask |= u64{1} << c;
    }
  }
  live_flows_ = flows_.size();
}

void LiveExporter::emit_record(u32 hash, FlowAgg& f, const char* reason,
                               Time now) {
  ++stats_.records;
  if (sink_ != nullptr) {
    FlowInfo info;
    if (flow_info_ != nullptr) info = flow_info_(hash);
    std::ostream& os = *sink_;
    os << "{\"schema\":\"sprayer.flowexport.v1\",\"type\":\"flow\""
       << ",\"ts_ps\":" << now << ",\"flow\":" << hash << ",\"reason\":\""
       << reason << '"' << ",\"packets\":" << f.packets
       << ",\"bytes\":" << f.bytes
       << ",\"delta_packets\":" << (f.packets - f.emitted_packets)
       << ",\"delta_bytes\":" << (f.bytes - f.emitted_bytes)
       << ",\"first_ps\":" << f.first << ",\"last_ps\":" << f.last
       << ",\"tcp_flags\":" << static_cast<unsigned>(f.tcp_flags)
       << ",\"placement\":\"" << info.placement << '"' << ",\"cores\":[";
    bool first_core = true;
    for (u32 c = 0; c < 64; ++c) {
      if (((f.core_mask >> c) & 1) == 0) continue;
      if (!first_core) os << ',';
      first_core = false;
      os << c;
    }
    os << "],\"ooo_sampled\":" << (info.ooo_sampled ? "true" : "false")
       << ",\"ooo_max\":";
    if (info.ooo_sampled) {
      os << info.ooo_max;
    } else {
      os << "null";
    }
    os << "}\n";
  }
  f.emitted_packets = f.packets;
  f.emitted_bytes = f.bytes;
  f.last_emit = now;
}

void LiveExporter::sweep(Time now, u32 budget, bool final_pass) {
  for (auto it = flows_.begin(); it != flows_.end();) {
    FlowAgg& f = it->second;
    if (final_pass) {
      emit_record(it->first, f, "final", now);
      ++stats_.final_records;
      it = flows_.erase(it);
      continue;
    }
    if (now - f.last >= cfg_.idle_timeout) {
      if (budget == 0) {
        ++stats_.deferred;
        ++it;
        continue;
      }
      --budget;
      emit_record(it->first, f, "idle", now);
      ++stats_.idle_records;
      it = flows_.erase(it);
      continue;
    }
    // Periodic re-emission while the flow grows: measured from first sight
    // for the initial record, from the previous record afterwards.
    const Time basis = f.last_emit == 0 ? f.first : f.last_emit;
    if (f.packets > f.emitted_packets && now - basis >= cfg_.export_interval) {
      if (budget == 0) {
        ++stats_.deferred;
        ++it;
        continue;
      }
      --budget;
      emit_record(it->first, f, "interval", now);
      ++stats_.interval_records;
    }
    ++it;
  }
  live_flows_ = flows_.size();
}

void LiveExporter::emit_snapshot(Time now, bool final_pass) {
  if (!registry_.finalized()) return;
  TelemetrySnapshot snap = collector_.collect();
  // Counters are monotonic per cell; two snapshots from one collector must
  // never show a counter total going backwards.
  if (have_prev_snapshot_) {
    JsonExporter::check_counters_monotonic(prev_snapshot_, snap);
  }
  ++stats_.snapshots;
  if (!snap.consistent) ++stats_.inconsistent_snapshots;
  if (sink_ != nullptr) {
    std::ostream& os = *sink_;
    os << "{\"schema\":\"sprayer.flowexport.v1\",\"type\":\"snapshot\""
       << ",\"ts_ps\":" << now << ",\"epoch\":" << snap.epoch
       << ",\"final\":" << (final_pass ? "true" : "false")
       << ",\"consistent\":" << (snap.consistent ? "true" : "false")
       << ",\"inconsistent_shards\":" << snap.inconsistent_shards
       << ",\"counters\":{";
    bool first = true;
    for (const auto& s : snap.scalars) {
      if (s.kind != MetricKind::kCounter) continue;
      if (!first) os << ',';
      first = false;
      write_json_string(os, s.name);
      os << ':' << s.total;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto& s : snap.scalars) {
      if (s.kind == MetricKind::kCounter) continue;
      if (!first) os << ',';
      first = false;
      write_json_string(os, s.name);
      os << ':' << s.total;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto& h : snap.histograms) {
      if (!first) os << ',';
      first = false;
      write_json_string(os, h.name);
      os << ":{\"count\":" << h.merged.count()
         << ",\"p50\":" << h.merged.p50() << ",\"p90\":" << h.merged.p90()
         << ",\"p99\":" << h.merged.p99() << ",\"max\":" << h.merged.max()
         << '}';
    }
    os << "}}\n";
  }
  prev_snapshot_ = std::move(snap);
  have_prev_snapshot_ = true;
}

void LiveExporter::tick(Time now) {
  last_tick_ = now;
  ++stats_.harvests;
  harvest();
  sweep(now, cfg_.max_records_per_tick, /*final_pass=*/false);
  if (cfg_.snapshot_interval > 0 &&
      now - last_snapshot_ >= cfg_.snapshot_interval) {
    last_snapshot_ = now;
    emit_snapshot(now, /*final_pass=*/false);
  }
  // Flush per tick so a FIFO/tail -f consumer sees lines live, not at exit.
  if (sink_ != nullptr) sink_->flush();
}

void LiveExporter::flush_final(Time now) {
  harvest();
  sweep(now, /*budget=*/0, /*final_pass=*/true);
  if (cfg_.snapshot_interval > 0) emit_snapshot(now, /*final_pass=*/true);
  if (sink_ != nullptr) sink_->flush();
}

}  // namespace sprayer::telemetry

// Sampled packet-path tracer (DESIGN.md §13): per-stage latency for
// 1-in-2^N packets, recorded into per-core log-histograms.
//
// A sampled packet is stamped at rx admission with a reserved bit of
// `Packet::user_tag` (bit 62) plus a 48-bit nanosecond timestamp relative
// to the tracer's construction (≈78 hours of range; deltas are computed
// mod 2^48 so wrap is harmless). Each stage reads the stamp, records
// `now - stamp` into its histogram, and re-stamps with `now`, so the
// histograms decompose the packet's path:
//
//   trace.steer_ns  — rx admission → steering decision (driver thread)
//   trace.queue_ns  — rx-ring doorbell → worker poll (the queue delay that
//                     is the adaptive layer's congestion signal)
//   trace.nf_ns     — worker poll → tx flush (classification, the whole NF
//                     chain run-to-completion, and the tx handoff; per-hop
//                     resolution inside this span comes from the existing
//                     chain.h<i>.*.ns histograms when chain_hop_timing is
//                     on). For a transferred connection packet this span
//                     includes the mesh-ring hop to its designated core.
//
// Sampling contract: the tracer owns `user_tag` bit 62 and the low 48 bits
// for stamped packets. It never stamps a packet the reorder observatory
// already claimed (bit 63) — when both features are on, a reorder-sampled
// flow's packets are simply invisible to the tracer (1-in-N applies to the
// remainder) — and a stage treats a packet as traced only when bit 62 is
// set AND bit 63 is clear. Generator-written user_tag values (small flow
// ids) are overwritten for sampled packets, so sinks that read user_tag
// should not run with tracing enabled.
//
// Thread contract: maybe_stamp/record_steer/flush_driver are driver-side
// (single thread, same as the inject path). record_queue/record_tx run on
// workers, inside the worker's registry update window, writing that
// worker's shard only. Driver-side histogram samples are buffered and
// drained by flush_driver() inside the driver's own update window.
#pragma once

#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/relaxed.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "net/packet.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/observability_config.hpp"
#include "telemetry/reorder.hpp"

namespace sprayer::telemetry {

class PathTracer {
 public:
  static constexpr u64 kTraceFlag = 1ULL << 62;
  static constexpr u64 kReorderFlag = ReorderObservatory::kStampFlag;
  static constexpr u64 kTsMask = (1ULL << 48) - 1;

  /// `base` anchors the 48-bit relative clock (pass steady_now() at setup).
  PathTracer(const TraceConfig& cfg, Time base)
      : sample_mask_((u64{1} << cfg.sample_shift) - 1),
        base_ns_(base / kNanosecond) {
    SPRAYER_CHECK_MSG(cfg.sample_shift <= 20,
                      "trace sampling coarser than 1-in-2^20 is a config typo");
  }

  PathTracer(const PathTracer&) = delete;
  PathTracer& operator=(const PathTracer&) = delete;

  /// Register the stage histograms and counters. Before registry finalize.
  void register_metrics(MetricsRegistry& registry);

  [[nodiscard]] static bool is_traced(u64 tag) noexcept {
    return (tag & (kTraceFlag | kReorderFlag)) == kTraceFlag;
  }

  /// Driver: stamp this packet if the 1-in-2^N counter elects it and the
  /// reorder observatory has not claimed the tag. Returns true if stamped.
  /// `now_fn` is invoked only for elected packets, so callers that would
  /// otherwise skip the clock read stay clock-free on unsampled packets.
  template <typename NowFn>
  bool maybe_stamp(net::Packet& pkt, NowFn&& now_fn) noexcept {
    if ((tick_++ & sample_mask_) != 0) return false;
    if ((pkt.user_tag & kReorderFlag) != 0) return false;
    pkt.user_tag = kTraceFlag | rel_ns(now_fn());
    ++sampled_;
    return true;
  }

  /// Driver: close the steer stage for a traced packet (buffered; drained
  /// by flush_driver inside the driver's registry window) and re-stamp.
  void record_steer(net::Packet& pkt, Time now) noexcept {
    const u64 t = rel_ns(now);
    steer_samples_.push_back(delta(pkt.user_tag, t));
    pkt.user_tag = kTraceFlag | t;
  }

  /// Driver (inside begin_update(driver_shard)): drain buffered steer
  /// samples into the histogram.
  void flush_driver(u32 driver_shard) noexcept {
    for (const u64 ns : steer_samples_) {
      steer_ns_.record(driver_shard, ns);
    }
    steer_samples_.clear();
  }
  [[nodiscard]] bool has_driver_samples() const noexcept {
    return !steer_samples_.empty();
  }

  /// Worker (inside begin_update(shard)): close the rx-ring queue stage for
  /// every traced packet of a polled batch and re-stamp.
  void record_queue(std::span<net::Packet* const> pkts, u32 shard,
                    Time now) noexcept {
    const u64 t = rel_ns(now);
    for (net::Packet* pkt : pkts) {
      if (!is_traced(pkt->user_tag)) continue;
      queue_ns_.record(shard, delta(pkt->user_tag, t));
      pkt->user_tag = kTraceFlag | t;
    }
  }

  /// Worker (inside begin_update(shard), at the tx boundary): close the NF
  /// stage. The clock is read lazily — only when the batch holds a traced
  /// packet — via `now_fn`.
  template <typename NowFn>
  void record_tx(std::span<net::Packet* const> pkts, u32 shard,
                 NowFn&& now_fn) noexcept {
    u64 t = 0;
    bool have_t = false;
    for (net::Packet* pkt : pkts) {
      if (!is_traced(pkt->user_tag)) continue;
      if (!have_t) {
        t = rel_ns(now_fn());
        have_t = true;
      }
      nf_ns_.record(shard, delta(pkt->user_tag, t));
      completed_.add(shard, 1);
    }
  }

  /// Packets elected for tracing (driver-side count, readable anywhere).
  [[nodiscard]] u64 sampled() const noexcept { return sampled_; }

 private:
  [[nodiscard]] u64 rel_ns(Time now) const noexcept {
    return (now / kNanosecond - base_ns_) & kTsMask;
  }
  [[nodiscard]] static u64 delta(u64 tag, u64 now_rel) noexcept {
    return (now_rel - (tag & kTsMask)) & kTsMask;
  }

  const u64 sample_mask_;
  const u64 base_ns_;
  u64 tick_ = 0;  // driver-private sampling counter
  RelaxedU64 sampled_;
  std::vector<u64> steer_samples_;  // driver-private stage buffer
  Histogram steer_ns_;
  Histogram queue_ns_;
  Histogram nf_ns_;
  Counter completed_;
};

}  // namespace sprayer::telemetry

// Runtime metrics registry: per-core sharded counters, gauges and
// log-histograms with a plain-store hot path.
//
// Every metric owns one cache-line-separated cell (or bucket array) per
// *shard* — one shard per worker core, plus optionally one for the driver
// thread — so the update path is a relaxed load + add + store to a
// core-private line: no atomic RMW, no lock, no cross-core traffic. Cells
// are std::atomic<u64> written with plain relaxed stores (single writer per
// shard) so concurrent snapshot readers are race-free and every individual
// read is untorn.
//
// Consistency across cells is the epoch/seqlock contract (see
// telemetry/snapshot.hpp): writers bracket a burst of related updates in a
// begin_update()/end_update() window (two relaxed stores + free fences on
// x86, once per *batch*, not per packet); the snapshot collector retries a
// shard whose sequence moved mid-copy. Registration is two-phase: declare
// metrics, then finalize() once to lay out the shard slabs; handles taken
// before finalize() (or from a registry that is never finalized — telemetry
// disabled) degrade to no-ops.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/histogram.hpp"
#include "common/types.hpp"

#include <atomic>

namespace sprayer::telemetry {

class MetricsRegistry;

enum class MetricKind : u8 {
  kCounter,   // monotonic; shards merge by sum
  kGauge,     // last value; shards merge by sum (e.g. per-core occupancy)
  kGaugeMax,  // high-water mark; shards merge by max
  kGaugeFn,   // collector-evaluated callback; no shard storage
};

[[nodiscard]] constexpr const char* to_string(MetricKind k) noexcept {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kGaugeMax: return "max";
    case MetricKind::kGaugeFn: return "fn";
  }
  return "?";
}

/// Handle to a sharded scalar metric. Default-constructed (or taken from a
/// never-finalized registry) handles are no-ops, so instrumented code needs
/// no "is telemetry on?" branches beyond the one inside the call.
class Counter {
 public:
  Counter() = default;
  inline void add(u32 shard, u64 n = 1) noexcept;
  inline void set(u32 shard, u64 v) noexcept;
  inline void record_max(u32 shard, u64 v) noexcept;

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* reg, u32 slot) noexcept : reg_(reg), slot_(slot) {}
  MetricsRegistry* reg_ = nullptr;
  u32 slot_ = 0;
};

/// Handle to a sharded log-histogram (LogHistogram bucket geometry, one
/// atomic bucket array per shard).
class Histogram {
 public:
  Histogram() = default;
  inline void record(u32 shard, u64 value, u64 count = 1) noexcept;

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* reg, u32 index) noexcept
      : reg_(reg), index_(index) {}
  MetricsRegistry* reg_ = nullptr;
  u32 index_ = 0;
};

class MetricsRegistry {
 public:
  /// `num_shards`: worker cores, plus one extra if a non-worker thread
  /// (e.g. the injection driver) also updates metrics.
  explicit MetricsRegistry(u32 num_shards)
      : num_shards_(num_shards), seqs_(num_shards) {
    SPRAYER_CHECK(num_shards >= 1);
  }

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- registration (single-threaded, before finalize) -------------------

  [[nodiscard]] Counter counter(std::string name) {
    return Counter{this, register_scalar(std::move(name),
                                         MetricKind::kCounter)};
  }
  [[nodiscard]] Counter gauge(std::string name,
                              MetricKind kind = MetricKind::kGauge) {
    SPRAYER_CHECK(kind == MetricKind::kGauge || kind == MetricKind::kGaugeMax);
    return Counter{this, register_scalar(std::move(name), kind)};
  }
  [[nodiscard]] Histogram histogram(std::string name,
                                    unsigned significant_bits = 5);

  /// Collector-evaluated gauge (no shard storage; the callback runs on the
  /// snapshotting thread). May be registered after finalize(), but not
  /// concurrently with a running collector.
  void gauge_fn(std::string name, std::function<u64()> fn) {
    fn_gauges_.push_back(FnGauge{std::move(name), std::move(fn)});
  }

  /// Lay out the shard slabs. Exactly once; registration of sharded
  /// metrics is rejected afterwards. A registry that is never finalized
  /// leaves all its handles as no-ops (telemetry disabled).
  void finalize();
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }
  [[nodiscard]] u32 num_shards() const noexcept { return num_shards_; }

  // --- writer-side epoch window ------------------------------------------
  // Bracket a burst of related updates from one shard's owning thread. The
  // snapshot collector retries while the (odd) sequence indicates a window
  // is open or the sequence moved during its copy.

  void begin_update(u32 shard) noexcept {
    if (!finalized_) return;
    SPRAYER_DCHECK(shard < num_shards_);
    auto& s = seqs_[shard].seq;
    s.store(s.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
  }
  void end_update(u32 shard) noexcept {
    if (!finalized_) return;
    SPRAYER_DCHECK(shard < num_shards_);
    auto& s = seqs_[shard].seq;
    std::atomic_thread_fence(std::memory_order_release);
    s.store(s.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
  }

  // --- hot-path update primitives (called through the handles) -----------

  void scalar_add(u32 shard, u32 slot, u64 n) noexcept {
    auto* cell = scalar_cell_ptr(shard, slot);
    if (cell == nullptr) return;
    cell->store(cell->load(std::memory_order_relaxed) + n,
                std::memory_order_relaxed);
  }
  void scalar_set(u32 shard, u32 slot, u64 v) noexcept {
    auto* cell = scalar_cell_ptr(shard, slot);
    if (cell == nullptr) return;
    cell->store(v, std::memory_order_relaxed);
  }
  void scalar_max(u32 shard, u32 slot, u64 v) noexcept {
    auto* cell = scalar_cell_ptr(shard, slot);
    if (cell == nullptr) return;
    if (v > cell->load(std::memory_order_relaxed)) {
      cell->store(v, std::memory_order_relaxed);
    }
  }
  void hist_record(u32 shard, u32 index, u64 value, u64 count) noexcept {
    if (!finalized_ || hist_lines_ == nullptr) return;
    SPRAYER_DCHECK(shard < num_shards_ && index < hists_.size());
    const HistInfo& h = hists_[index];
    const u32 slot = h.offset + static_cast<u32>(h.proto.index_of(value));
    auto& cell = hist_lines_[static_cast<std::size_t>(shard) *
                                 hist_lines_per_shard_ + (slot >> 3)]
                     .v[slot & 7];
    cell.store(cell.load(std::memory_order_relaxed) + count,
               std::memory_order_relaxed);
  }

  // --- collector-side introspection (telemetry/snapshot.hpp) -------------

  struct ScalarInfo {
    std::string name;
    MetricKind kind;
  };
  struct HistInfo {
    std::string name;
    LogHistogram proto;  // geometry donor (never add()ed to)
    u32 offset = 0;      // first bucket slot within a shard's hist region
  };
  struct FnGauge {
    std::string name;
    std::function<u64()> fn;
  };

  [[nodiscard]] const std::vector<ScalarInfo>& scalar_info() const noexcept {
    return scalars_;
  }
  [[nodiscard]] const std::vector<HistInfo>& hist_info() const noexcept {
    return hists_;
  }
  [[nodiscard]] const std::vector<FnGauge>& fn_gauges() const noexcept {
    return fn_gauges_;
  }
  /// Total histogram bucket slots per shard.
  [[nodiscard]] u32 hist_slots() const noexcept { return hist_slots_; }

  [[nodiscard]] u64 scalar_cell(u32 shard, u32 slot) const noexcept {
    const auto* cell =
        const_cast<MetricsRegistry*>(this)->scalar_cell_ptr(shard, slot);
    return cell == nullptr ? 0 : cell->load(std::memory_order_relaxed);
  }
  [[nodiscard]] u64 hist_cell(u32 shard, u32 slot) const noexcept {
    if (hist_lines_ == nullptr) return 0;
    return hist_lines_[static_cast<std::size_t>(shard) *
                           hist_lines_per_shard_ + (slot >> 3)]
        .v[slot & 7]
        .load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::atomic<u64>& shard_seq(u32 shard) const noexcept {
    return seqs_[shard].seq;
  }

  /// Cross-shard sum of one scalar handle (the NF accessor-shim read path;
  /// racy-but-atomic, each cell monotonic for counters).
  [[nodiscard]] u64 read_total(const Counter& c) const noexcept {
    if (c.reg_ != this || !finalized_) return 0;
    u64 total = 0;
    for (u32 s = 0; s < num_shards_; ++s) total += scalar_cell(s, c.slot_);
    return total;
  }

 private:
  /// Eight cells per cache line; shard regions are whole-line multiples so
  /// no two shards ever share a line.
  struct alignas(kCacheLineSize) CellLine {
    std::atomic<u64> v[8] = {};
  };
  struct alignas(kCacheLineSize) ShardSeq {
    std::atomic<u64> seq{0};
  };

  u32 register_scalar(std::string name, MetricKind kind);
  void check_name_free(const std::string& name) const;

  [[nodiscard]] std::atomic<u64>* scalar_cell_ptr(u32 shard,
                                                  u32 slot) noexcept {
    if (!finalized_ || scalar_lines_ == nullptr) return nullptr;
    SPRAYER_DCHECK(shard < num_shards_ && slot < scalars_.size());
    return &scalar_lines_[static_cast<std::size_t>(shard) *
                              scalar_lines_per_shard_ + (slot >> 3)]
                .v[slot & 7];
  }

  u32 num_shards_;
  bool finalized_ = false;

  std::vector<ScalarInfo> scalars_;
  std::vector<HistInfo> hists_;
  std::vector<FnGauge> fn_gauges_;
  u32 hist_slots_ = 0;

  // Slabs are unique_ptr arrays (not vectors): atomics are neither movable
  // nor copyable, and C++17 array-new honors the over-aligned CellLine.
  std::unique_ptr<CellLine[]> scalar_lines_;
  std::size_t scalar_lines_per_shard_ = 0;
  std::unique_ptr<CellLine[]> hist_lines_;
  std::size_t hist_lines_per_shard_ = 0;
  std::vector<ShardSeq> seqs_;
};

inline void Counter::add(u32 shard, u64 n) noexcept {
  if (reg_ != nullptr) reg_->scalar_add(shard, slot_, n);
}
inline void Counter::set(u32 shard, u64 v) noexcept {
  if (reg_ != nullptr) reg_->scalar_set(shard, slot_, v);
}
inline void Counter::record_max(u32 shard, u64 v) noexcept {
  if (reg_ != nullptr) reg_->scalar_max(shard, slot_, v);
}
inline void Histogram::record(u32 shard, u64 value, u64 count) noexcept {
  if (reg_ != nullptr) reg_->hist_record(shard, index_, value, count);
}

/// Registry-or-fallback holder for NFs (and other embeddable components):
/// binds to a framework-provided registry when one exists, otherwise owns a
/// private one so the component's counters keep working under any executor.
/// attach() before registering handles; seal() after (finalizes only the
/// private registry — a shared one is finalized by its owner).
class RegistrySlot {
 public:
  MetricsRegistry& attach(MetricsRegistry* shared, u32 num_shards) {
    own_.reset();
    if (shared != nullptr) {
      reg_ = shared;
    } else {
      own_ = std::make_unique<MetricsRegistry>(num_shards);
      reg_ = own_.get();
    }
    return *reg_;
  }
  void seal() {
    if (own_ != nullptr) own_->finalize();
  }
  [[nodiscard]] const MetricsRegistry* get() const noexcept { return reg_; }
  /// Cross-shard sum of `c`; 0 before attach() (component never init()ed).
  [[nodiscard]] u64 total(const Counter& c) const noexcept {
    return reg_ == nullptr ? 0 : reg_->read_total(c);
  }

 private:
  MetricsRegistry* reg_ = nullptr;
  std::unique_ptr<MetricsRegistry> own_;
};

/// RAII begin_update/end_update window.
class UpdateScope {
 public:
  UpdateScope(MetricsRegistry& reg, u32 shard) noexcept
      : reg_(reg), shard_(shard) {
    reg_.begin_update(shard_);
  }
  ~UpdateScope() { reg_.end_update(shard_); }
  UpdateScope(const UpdateScope&) = delete;
  UpdateScope& operator=(const UpdateScope&) = delete;

 private:
  MetricsRegistry& reg_;
  u32 shard_;
};

}  // namespace sprayer::telemetry

// Configuration for the live observability plane (DESIGN.md §13): flow
// record export and sampled packet-path tracing. Lives in telemetry/ (not
// core/config.hpp) so the flow_export/trace modules can consume it without
// a core dependency; SprayerConfig embeds both structs.
#pragma once

#include <string>

#include "common/types.hpp"
#include "common/units.hpp"

namespace sprayer::telemetry {

/// Per-flow record accounting + JSON-lines export ("sprayer.flowexport.v1").
/// Workers account packets into per-core single-writer record tables; the
/// injection driver harvests them on its maintenance tick and emits records
/// on idle expiry, at a periodic interval, and at shutdown.
struct FlowExportConfig {
  bool enabled = false;
  /// Per-core record-table slots (direct-mapped by flow hash); power of two.
  /// Colliding flows evict only idle incumbents — a live flow keeps its
  /// slot and the newcomer is counted in flow_export.untracked instead.
  u32 table_slots = 1024;
  /// Driver-side harvest cadence (delta pickup from the per-core tables).
  Time harvest_interval = 5 * kMillisecond;
  /// A flow with new traffic is re-emitted at most this often.
  Time export_interval = 50 * kMillisecond;
  /// A flow idle this long is emitted with reason "idle" and forgotten.
  Time idle_timeout = 200 * kMillisecond;
  /// Cadence of live registry-snapshot lines in the export stream
  /// (0 disables snapshot lines; flow records are unaffected).
  Time snapshot_interval = 200 * kMillisecond;
  /// Write budget: at most this many flow records per driver tick; flows
  /// over budget stay aggregated and are offered again next tick.
  u32 max_records_per_tick = 256;
  /// JSON-lines sink (file or FIFO). Empty: records are counted (and
  /// visible to tests via LiveExporter accessors) but not written.
  std::string sink_path;
};

/// Sampled packet-path tracing: 1-in-2^sample_shift packets carry a
/// timestamp in a reserved Packet::user_tag bit; each pipeline stage
/// (steer, rx-ring wait, NF dispatch + tx flush) records its latency into a
/// per-core log-histogram. Requires SprayerConfig::telemetry (the
/// histograms live in the metrics registry).
struct TraceConfig {
  bool enabled = false;
  /// Sample 1 in 2^sample_shift injected packets (6 → 1-in-64).
  u32 sample_shift = 6;
};

}  // namespace sprayer::telemetry

#include "nic/flow_director.hpp"

#include <bit>

#include "net/byte_order.hpp"

namespace sprayer::nic {

namespace {
constexpr u16 kNoRule = 0xffff;
constexpr u32 kMinExactCapacity = 64;
}

const FlowDirector::ExactSlot* FlowDirector::find_exact(
    const net::FiveTuple& tuple, u64 hash) const noexcept {
  if (exact_slots_.empty()) return nullptr;
  const u32 mask = static_cast<u32>(exact_slots_.size()) - 1;
  for (u32 i = static_cast<u32>(hash) & mask;; i = (i + 1) & mask) {
    const ExactSlot& slot = exact_slots_[i];
    if (slot.state == kSlotEmpty) return nullptr;
    if (slot.state == kSlotFull && slot.hash == hash && slot.tuple == tuple) {
      return &slot;
    }
  }
}

void FlowDirector::rehash_exact(u32 new_capacity) {
  std::vector<ExactSlot> old = std::move(exact_slots_);
  exact_slots_.assign(new_capacity, ExactSlot{});
  exact_tombstones_ = 0;
  const u32 mask = new_capacity - 1;
  for (const ExactSlot& slot : old) {
    if (slot.state != kSlotFull) continue;
    u32 i = static_cast<u32>(slot.hash) & mask;
    while (exact_slots_[i].state == kSlotFull) i = (i + 1) & mask;
    exact_slots_[i] = slot;
  }
}

Status FlowDirector::add_exact_rule(const net::FiveTuple& tuple, u16 queue) {
  if (rule_count() >= kMaxRules) {
    return make_error(Error::Code::kExhausted,
                      "Flow Director rule table full (8K)");
  }
  const u64 hash = tuple.pack();
  if (find_exact(tuple, hash) != nullptr) {
    return make_error(Error::Code::kAlreadyExists,
                      "duplicate Flow Director rule for " + tuple.to_string());
  }
  // Keep the table at most half full (counting tombstones, which also
  // lengthen probe runs) so misses stay near one probe.
  const u32 capacity = static_cast<u32>(exact_slots_.size());
  if (capacity == 0 ||
      (exact_count_ + exact_tombstones_ + 1) * 2 > capacity) {
    u32 grown = capacity == 0 ? kMinExactCapacity : capacity;
    while ((exact_count_ + 1) * 2 > grown) grown *= 2;
    rehash_exact(grown);
  }
  const u32 mask = static_cast<u32>(exact_slots_.size()) - 1;
  u32 i = static_cast<u32>(hash) & mask;
  while (exact_slots_[i].state == kSlotFull) i = (i + 1) & mask;
  if (exact_slots_[i].state == kSlotTombstone) --exact_tombstones_;
  exact_slots_[i] = ExactSlot{hash, tuple, queue, kSlotFull};
  ++exact_count_;
  return {};
}

bool FlowDirector::remove_exact_rule(const net::FiveTuple& tuple) noexcept {
  const ExactSlot* slot = find_exact(tuple, tuple.pack());
  if (slot == nullptr) return false;
  auto& mutable_slot = exact_slots_[slot - exact_slots_.data()];
  mutable_slot.state = kSlotTombstone;
  --exact_count_;
  ++exact_tombstones_;
  // Idle-rule eviction churns rules one at a time; fold tombstones back in
  // before they dominate probe runs.
  if (exact_tombstones_ > static_cast<u32>(exact_slots_.size()) / 4) {
    rehash_exact(static_cast<u32>(exact_slots_.size()));
  }
  return true;
}

Status FlowDirector::add_checksum_rule(u16 mask, u16 value, u16 queue) {
  if (rule_count() >= kMaxRules) {
    return make_error(Error::Code::kExhausted,
                      "Flow Director rule table full (8K)");
  }
  if ((value & ~mask) != 0) {
    return make_error(Error::Code::kInvalidArgument,
                      "rule value has bits outside the mask");
  }
  if (checksum_rule_count_ > 0 && mask != checksum_mask_) {
    // The 82599 applies one global input mask to all perfect-match filters.
    return make_error(Error::Code::kInvalidArgument,
                      "all checksum rules must share one mask");
  }
  if (checksum_rule_count_ == 0) {
    checksum_mask_ = mask;
    checksum_queues_.assign(1u << std::popcount(mask), kNoRule);
    // One contiguous run of bits compresses with a shift; the general case
    // (non-contiguous masks) keeps the per-bit loop in match_detail().
    const u32 shifted = mask == 0 ? 0u : mask >> std::countr_zero(mask);
    checksum_mask_contiguous_ = mask != 0 && (shifted & (shifted + 1)) == 0;
    checksum_shift_ =
        mask == 0 ? 0 : static_cast<u8>(std::countr_zero(mask));
  }
  // Compress (value & mask) into a dense index over the mask's bits.
  u32 index = 0;
  u32 bit_out = 0;
  for (u32 bit = 0; bit < 16; ++bit) {
    if (mask & (1u << bit)) {
      if (value & (1u << bit)) index |= (1u << bit_out);
      ++bit_out;
    }
  }
  if (checksum_queues_[index] != kNoRule) {
    return make_error(Error::Code::kAlreadyExists,
                      "duplicate checksum rule value");
  }
  checksum_queues_[index] = queue;
  ++checksum_rule_count_;
  return {};
}

Status FlowDirector::program_checksum_spray(u32 num_queues) {
  if (num_queues == 0 || num_queues > kMaxRules) {
    return make_error(Error::Code::kInvalidArgument,
                      "queue count out of range");
  }
  clear();
  u32 bits = 0;
  while ((1u << bits) < num_queues) ++bits;
  if (bits == 0) bits = 1;  // at least one bit so the rule set is non-empty
  const u16 mask = static_cast<u16>((1u << bits) - 1);
  for (u32 v = 0; v < (1u << bits); ++v) {
    const Status s = add_checksum_rule(mask, static_cast<u16>(v),
                                       static_cast<u16>(v % num_queues));
    if (!s.ok()) return s;
  }
  return {};
}

void FlowDirector::clear() noexcept {
  exact_slots_.clear();
  exact_count_ = 0;
  exact_tombstones_ = 0;
  checksum_mask_ = 0;
  checksum_rule_count_ = 0;
  checksum_mask_contiguous_ = false;
  checksum_shift_ = 0;
  checksum_queues_.clear();
}

FlowDirector::MatchResult FlowDirector::checksum_verdict(
    u16 cks) const noexcept {
  u32 index;
  if (checksum_mask_contiguous_) {
    index = static_cast<u32>(cks & checksum_mask_) >> checksum_shift_;
  } else {
    index = 0;
    u32 bit_out = 0;
    for (u32 bit = 0; bit < 16; ++bit) {
      if (checksum_mask_ & (1u << bit)) {
        if (cks & (1u << bit)) index |= (1u << bit_out);
        ++bit_out;
      }
    }
  }
  const u16 q = checksum_queues_[index];
  if (q != kNoRule) return {q, MatchKind::kChecksum};
  return {};
}

FlowDirector::MatchResult FlowDirector::match_detail(
    net::Packet& pkt) const noexcept {
  if (!pkt.is_tcp()) return {};
  // Exact rules first: a full-tuple perfect match is more specific than a
  // checksum-masked one (precedence contract in the header).
  if (exact_count_ > 0) {
    const net::FiveTuple tuple = pkt.five_tuple();
    const ExactSlot* slot = find_exact(tuple, tuple.pack());
    if (slot != nullptr) return {slot->queue, MatchKind::kExact};
  }
  if (checksum_rule_count_ > 0) return checksum_verdict(pkt.tcp().checksum());
  return {};
}

}  // namespace sprayer::nic

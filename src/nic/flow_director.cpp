#include "nic/flow_director.hpp"

#include <bit>

#include "net/byte_order.hpp"

namespace sprayer::nic {

namespace {
constexpr u16 kNoRule = 0xffff;
}

Status FlowDirector::add_exact_rule(const net::FiveTuple& tuple, u16 queue) {
  if (rule_count() >= kMaxRules) {
    return make_error(Error::Code::kExhausted,
                      "Flow Director rule table full (8K)");
  }
  const auto [it, inserted] = exact_.emplace(tuple, queue);
  if (!inserted) {
    return make_error(Error::Code::kAlreadyExists,
                      "duplicate Flow Director rule for " + tuple.to_string());
  }
  return {};
}

Status FlowDirector::add_checksum_rule(u16 mask, u16 value, u16 queue) {
  if (rule_count() >= kMaxRules) {
    return make_error(Error::Code::kExhausted,
                      "Flow Director rule table full (8K)");
  }
  if ((value & ~mask) != 0) {
    return make_error(Error::Code::kInvalidArgument,
                      "rule value has bits outside the mask");
  }
  if (checksum_rule_count_ > 0 && mask != checksum_mask_) {
    // The 82599 applies one global input mask to all perfect-match filters.
    return make_error(Error::Code::kInvalidArgument,
                      "all checksum rules must share one mask");
  }
  if (checksum_rule_count_ == 0) {
    checksum_mask_ = mask;
    checksum_queues_.assign(1u << std::popcount(mask), kNoRule);
  }
  // Compress (value & mask) into a dense index over the mask's bits.
  u32 index = 0;
  u32 bit_out = 0;
  for (u32 bit = 0; bit < 16; ++bit) {
    if (mask & (1u << bit)) {
      if (value & (1u << bit)) index |= (1u << bit_out);
      ++bit_out;
    }
  }
  if (checksum_queues_[index] != kNoRule) {
    return make_error(Error::Code::kAlreadyExists,
                      "duplicate checksum rule value");
  }
  checksum_queues_[index] = queue;
  ++checksum_rule_count_;
  return {};
}

Status FlowDirector::program_checksum_spray(u32 num_queues) {
  if (num_queues == 0 || num_queues > kMaxRules) {
    return make_error(Error::Code::kInvalidArgument,
                      "queue count out of range");
  }
  clear();
  u32 bits = 0;
  while ((1u << bits) < num_queues) ++bits;
  if (bits == 0) bits = 1;  // at least one bit so the rule set is non-empty
  const u16 mask = static_cast<u16>((1u << bits) - 1);
  for (u32 v = 0; v < (1u << bits); ++v) {
    const Status s = add_checksum_rule(mask, static_cast<u16>(v),
                                       static_cast<u16>(v % num_queues));
    if (!s.ok()) return s;
  }
  return {};
}

void FlowDirector::clear() noexcept {
  exact_.clear();
  checksum_mask_ = 0;
  checksum_rule_count_ = 0;
  checksum_queues_.clear();
}

std::optional<u16> FlowDirector::match(net::Packet& pkt) const noexcept {
  if (!pkt.is_tcp()) return std::nullopt;
  if (!exact_.empty()) {
    const auto it = exact_.find(pkt.five_tuple());
    if (it != exact_.end()) return it->second;
  }
  if (checksum_rule_count_ > 0) {
    const u16 cks = pkt.tcp().checksum();
    u32 index = 0;
    u32 bit_out = 0;
    for (u32 bit = 0; bit < 16; ++bit) {
      if (checksum_mask_ & (1u << bit)) {
        if (cks & (1u << bit)) index |= (1u << bit_out);
        ++bit_out;
      }
    }
    const u16 q = checksum_queues_[index];
    if (q != 0xffff) return q;
  }
  return std::nullopt;
}

}  // namespace sprayer::nic

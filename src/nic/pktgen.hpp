// MoonGen-like packet generator and measurement sink (the paper's traffic-
// generator server).
//
// Generates minimum-size TCP packets with randomized trailing payload bytes
// — hence uniformly distributed TCP checksums, the property the Flow
// Director spraying trick depends on — across a configurable set of flows,
// at a configurable rate (CBR like MoonGen, or Poisson for the latency
// experiment). Optionally sends one SYN per flow up front so stateful NFs
// can install flow state at the designated cores.
#pragma once

#include <vector>

#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "net/packet_builder.hpp"
#include "net/packet_pool.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"

namespace sprayer::nic {

/// Deterministically generate `n` random TCP five-tuples from a seed.
[[nodiscard]] std::vector<net::FiveTuple> random_tcp_flows(u32 n, u64 seed);

struct PktGenConfig {
  double rate_pps = line_rate_pps(10e9, 60);  // saturate by default
  u32 frame_len = 60;                         // "64 B" packets (incl. FCS)
  u32 num_flows = 1;
  u64 seed = 1;
  bool poisson = false;       // exponential inter-arrivals instead of CBR
  bool send_initial_syns = true;
  Time stop_at = 0;           // 0 = run forever (caller bounds the sim)
  /// Connection churn: when non-zero, every Nth packet is the SYN of a
  /// brand-new random flow (models connection-rate-heavy workloads; used
  /// by the redirection-cost ablation).
  u32 new_flow_every = 0;
};

class PacketGen final : public sim::IEventTarget {
 public:
  PacketGen(sim::Simulator& sim, net::PacketPool& pool, sim::Link& out,
            PktGenConfig cfg);

  /// Schedule the first transmission.
  void start();

  void handle_event(u64 tag) override;

  [[nodiscard]] u64 sent() const noexcept { return sent_; }
  [[nodiscard]] const std::vector<net::FiveTuple>& flows() const noexcept {
    return flows_;
  }

 private:
  void emit_packet();

  sim::Simulator& sim_;
  net::PacketPool& pool_;
  sim::Link& out_;
  PktGenConfig cfg_;
  Rng rng_;
  std::vector<net::FiveTuple> flows_;
  std::vector<u32> flow_seq_;
  u64 sent_ = 0;
  u32 next_flow_ = 0;
};

/// Terminal sink: counts packets/bytes and records one-way latency from
/// Packet::ts_gen. Used to measure processed rate (Figs. 6a/7a) and the
/// latency distribution (Fig. 8).
class MeasureSink final : public sim::IPacketSink {
 public:
  explicit MeasureSink(sim::Simulator& sim) : sim_(sim) {}

  void receive(net::Packet* pkt) override {
    ++packets_;
    bytes_ += pkt->len();
    if (pkt->ts_gen != 0) {
      latency_.add(sim_.now() - pkt->ts_gen);
    }
    pkt->pool()->free(pkt);
  }

  /// Reset counters (e.g. after warmup) without clearing identity.
  void reset() noexcept {
    packets_ = 0;
    bytes_ = 0;
    latency_.reset();
  }

  [[nodiscard]] u64 packets() const noexcept { return packets_; }
  [[nodiscard]] u64 bytes() const noexcept { return bytes_; }
  /// Latency histogram in picoseconds.
  [[nodiscard]] const LogHistogram& latency() const noexcept {
    return latency_;
  }

 private:
  sim::Simulator& sim_;
  u64 packets_ = 0;
  u64 bytes_ = 0;
  LogHistogram latency_{10};
};

}  // namespace sprayer::nic

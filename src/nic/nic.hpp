// Simulated multi-queue NIC (modeled on the Intel 82599ES).
//
// Rx path: packets arriving from links are classified — Flow Director first,
// RSS fallback — and enqueued on bounded per-queue FIFOs that cores poll
// with rx_burst(). Tx path: cores hand packets to tx(port, pkt), which
// forwards to the attached link (the link models serialization and its own
// FIFO).
//
// Hardware limits modeled:
//   * bounded rx descriptor rings (tail drop, per-queue rx_missed counters);
//   * the Flow Director classification ceiling (~10.4 Mpps on the 82599),
//     modeled as a leaky bucket with a small pipeline: TCP packets that
//     would match FDIR rules are dropped beyond that rate — the cause of
//     Sprayer's 10 Mpps plateau in the paper's Figure 6(a).
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/overload.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "nic/flow_director.hpp"
#include "nic/rss.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"

namespace sprayer::nic {

struct NicConfig {
  u32 num_queues = 8;
  u32 queue_depth = 512;  // default ixgbe rx ring size
  u32 num_ports = 2;
  /// Flow Director classification ceiling in packets/second (0 = unlimited).
  /// Only applies to packets that are subject to FDIR lookup.
  double fdir_max_pps = 10.4e6;
  /// Depth of the internal classification pipeline feeding FDIR (absorbs
  /// bursts below the ceiling without loss).
  u32 fdir_pipeline_depth = 64;
  /// What a backed-up rx queue does with arrivals — the same policy enum
  /// the threaded executor's rx boundary uses, so benches agree on what
  /// overload means. A wire cannot be paused, so kBlock degrades to
  /// kDropRegularFirst here. Default kDropNew preserves the classic
  /// tail-drop NIC model.
  OverloadPolicy overload_policy = OverloadPolicy::kDropNew;
  /// Occupancy fraction of queue_depth above which kDropRegularFirst sheds
  /// regular packets; the headroom above it is reserved for connection
  /// packets.
  double shed_watermark = 0.75;

  // --- Programmable-NIC extensions (paper §7, future work) ---------------
  /// Spray each flow over only a subset of `spray_subset` queues anchored
  /// at its RSS queue (0 = spray over all queues). Trades parallelism for
  /// less reordering ("it may be wise to only spray packets from a
  /// particular flow to a limited subset of cores"). Not expressible on the
  /// 82599; models a programmable NIC.
  u32 spray_subset = 0;
  /// Deliver TCP connection packets (SYN/FIN/RST) directly to the flow's
  /// designated queue, removing Sprayer's software redirection ("we could
  /// program NICs to direct connection packets to designated cores").
  bool hw_connection_steering = false;
  /// Flowlet spraying (inspired by CONGA/Presto, paper §7): packets of a
  /// flow stick to one queue while they arrive back-to-back; after an idle
  /// gap longer than this, the next burst is re-sprayed to a fresh random
  /// queue. 0 disables (pure per-packet spraying). Reduces reordering at
  /// the cost of shorter-timescale balancing.
  Time flowlet_gap = 0;
  /// Queue-depth-aware spraying (hardware analog of the adaptive policy's
  /// power-of-two-choices pick, DESIGN.md §12): each checksum-sprayed
  /// packet draws a second candidate queue from the checksum's upper bits
  /// and lands on the shallower of the two rx queues. Exact-rule (pinned)
  /// packets are never deflected. Ignored while flowlet_gap > 0 —
  /// deflecting a sticky flowlet would defeat its reorder guarantee.
  bool p2c_spray = false;
};

/// Cores register to learn when an empty queue becomes non-empty.
class IRxListener {
 public:
  virtual ~IRxListener() = default;
  virtual void rx_ready(u16 queue) = 0;
};

class SimNic final : public sim::IPacketSink {
 public:
  SimNic(sim::Simulator& sim, NicConfig cfg);

  SimNic(const SimNic&) = delete;
  SimNic& operator=(const SimNic&) = delete;

  /// Wire a transmit link to a port. Must be called for every port used.
  void attach_tx_link(u8 port, sim::Link& link);
  void set_rx_listener(IRxListener* listener) noexcept {
    listener_ = listener;
  }

  [[nodiscard]] RssEngine& rss() noexcept { return rss_; }
  [[nodiscard]] FlowDirector& fdir() noexcept { return fdir_; }
  [[nodiscard]] const NicConfig& config() const noexcept { return cfg_; }

  /// Ingress from a link. Classifies and enqueues (or drops).
  void receive(net::Packet* pkt) override;

  /// Poll up to `max` packets from a queue. Returns the count.
  u32 rx_burst(u16 queue, net::Packet** out, u32 max);

  /// Transmit a packet out of a port.
  void tx(u8 port, net::Packet* pkt);

  [[nodiscard]] u32 queue_depth(u16 queue) const {
    return static_cast<u32>(queues_[queue].size());
  }

  struct Counters {
    u64 rx_packets = 0;          // accepted into some queue
    u64 rx_missed = 0;           // dropped at a queue (total, any class)
    u64 rx_shed_regular = 0;     // of rx_missed: regular, watermark shed
    u64 rx_dropped_conn = 0;     // of rx_missed: connection packets lost
    u64 fdir_matched = 0;        // dispatched by Flow Director
    u64 fdir_overload_drops = 0; // dropped: FDIR pps ceiling
    u64 rss_dispatched = 0;      // dispatched by RSS fallback
    u64 p2c_deflections = 0;     // sprayed packets moved to a shallower queue
    u64 tx_packets = 0;
  };
  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }
  [[nodiscard]] u64 queue_rx_missed(u16 queue) const {
    return per_queue_missed_[queue];
  }
  void reset_counters() noexcept {
    counters_ = Counters{};
    std::fill(per_queue_missed_.begin(), per_queue_missed_.end(), 0);
  }

 private:
  /// Place a classified packet on its queue (tail drop + wakeup).
  void enqueue(u16 queue, net::Packet* pkt);

  struct FlowletState {
    u16 queue = 0;
    Time last_seen = 0;
  };

  sim::Simulator& sim_;
  NicConfig cfg_;
  RssEngine rss_;
  FlowDirector fdir_;
  std::vector<std::deque<net::Packet*>> queues_;
  std::vector<u64> per_queue_missed_;
  std::unordered_map<net::FiveTuple, FlowletState, net::FiveTupleHash>
      flowlets_;
  std::vector<sim::Link*> tx_links_;
  IRxListener* listener_ = nullptr;
  Counters counters_;
  /// Leaky-bucket state for the FDIR ceiling: virtual completion time of the
  /// last classified packet.
  Time fdir_busy_until_ = 0;
};

}  // namespace sprayer::nic

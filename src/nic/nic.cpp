#include "nic/nic.hpp"

namespace sprayer::nic {

SimNic::SimNic(sim::Simulator& sim, NicConfig cfg)
    : sim_(sim),
      cfg_(cfg),
      rss_(cfg.num_queues),
      queues_(cfg.num_queues),
      per_queue_missed_(cfg.num_queues, 0),
      tx_links_(cfg.num_ports, nullptr) {
  SPRAYER_CHECK(cfg.num_queues >= 1);
  SPRAYER_CHECK(cfg.num_ports >= 1);
}

void SimNic::attach_tx_link(u8 port, sim::Link& link) {
  SPRAYER_CHECK(port < tx_links_.size());
  tx_links_[port] = &link;
}

void SimNic::receive(net::Packet* pkt) {
  pkt->parse();

  // Model the 82599 rx descriptor: hardware computes the RSS hash once and
  // writes it into the descriptor's hash field; everything downstream (core
  // picker, designated-core check, flow tables) reuses it instead of
  // re-hashing the five-tuple. Non-IP frames get no hash (field invalid).
  u32 rss_hash = 0;
  if (pkt->is_ipv4()) {
    rss_hash = rss_.hash_of(*pkt);
    pkt->set_flow_hash(rss_hash);
  }

  u16 queue;
  if (cfg_.hw_connection_steering && pkt->is_connection_packet()) {
    // Programmable-NIC mode: connection packets go straight to the
    // designated queue (which equals the symmetric-RSS queue).
    ++counters_.rss_dispatched;
    queue = rss_.queue_for_hash(rss_hash);
    enqueue(queue, pkt);
    return;
  }
  const FlowDirector::MatchResult fdir_match = fdir_.match_detail(*pkt);
  if (fdir_match.hit()) {
    // Enforce the FDIR classification ceiling: each lookup occupies the
    // classifier for 1/fdir_max_pps; a bounded pipeline absorbs bursts.
    if (cfg_.fdir_max_pps > 0) {
      const Time per_pkt = static_cast<Time>(1e12 / cfg_.fdir_max_pps);
      const Time now = sim_.now();
      const Time backlog_start = now > fdir_busy_until_ ? now
                                                        : fdir_busy_until_;
      const Time max_backlog =
          per_pkt * cfg_.fdir_pipeline_depth;
      if (backlog_start - now > max_backlog) {
        ++counters_.fdir_overload_drops;
        pkt->pool()->free(pkt);
        return;
      }
      fdir_busy_until_ = backlog_start + per_pkt;
    }
    ++counters_.fdir_matched;
    queue = fdir_match.queue;
    if (cfg_.flowlet_gap > 0) {
      // Flowlet mode: reuse the previous queue while the flow's packets
      // arrive within the gap; re-spray (to the checksum-chosen queue) on
      // a new flowlet.
      const Time now = sim_.now();
      auto [it, inserted] =
          flowlets_.try_emplace(pkt->five_tuple().canonical());
      FlowletState& st = it->second;
      if (inserted || now - st.last_seen > cfg_.flowlet_gap) {
        st.queue = queue;  // new flowlet: adopt the sprayed choice
      }
      st.last_seen = now;
      queue = st.queue;
    }
    if (cfg_.spray_subset > 0 && cfg_.spray_subset < cfg_.num_queues) {
      // Limited spraying: the flow's RSS queue anchors a window of
      // `spray_subset` queues; the (random) checksum picks within it.
      const u16 anchor = rss_.queue_for_hash(rss_hash);
      const u16 offset =
          static_cast<u16>(pkt->tcp().checksum() % cfg_.spray_subset);
      queue = static_cast<u16>((anchor + offset) % cfg_.num_queues);
    }
    if (cfg_.p2c_spray && cfg_.flowlet_gap == 0 &&
        fdir_match.kind == FlowDirector::MatchKind::kChecksum &&
        cfg_.num_queues > 1) {
      // Power-of-two choices: a second candidate from the checksum's upper
      // bits (independent of the rule-selecting low bits), kept inside the
      // spray window when subset spraying is on; land on the shallower
      // queue. Exact-rule pins never reach here (kind is kExact).
      const u16 entropy = static_cast<u16>(pkt->tcp().checksum() >> 8);
      u16 alt;
      if (cfg_.spray_subset > 1 && cfg_.spray_subset < cfg_.num_queues) {
        const u16 anchor = rss_.queue_for_hash(rss_hash);
        alt = static_cast<u16>((anchor + entropy % cfg_.spray_subset) %
                               cfg_.num_queues);
      } else {
        alt = static_cast<u16>(
            (queue + 1 + entropy % (cfg_.num_queues - 1)) % cfg_.num_queues);
      }
      if (alt != queue && queues_[alt].size() < queues_[queue].size()) {
        queue = alt;
        ++counters_.p2c_deflections;
      }
    }
  } else {
    ++counters_.rss_dispatched;
    queue = rss_.queue_for_hash(rss_hash);
  }
  enqueue(queue, pkt);
}

void SimNic::enqueue(u16 queue, net::Packet* pkt) {
  SPRAYER_CHECK_MSG(queue < queues_.size(), "rule points at missing queue");

  auto& q = queues_[queue];
  // Class-aware admission (overload-control subsystem): under
  // kDropRegularFirst — and kBlock, which degrades to it because a wire
  // cannot be paused — regular packets shed at the watermark so the
  // remaining headroom stays available for connection packets. Every drop
  // still counts in rx_missed (the total); the class splits are
  // sub-counters.
  const bool conn = pkt->is_tcp() && pkt->is_connection_packet();
  const u32 limit =
      cfg_.overload_policy == OverloadPolicy::kDropNew || conn
          ? cfg_.queue_depth
          : shed_threshold(cfg_.queue_depth, cfg_.shed_watermark);
  if (q.size() >= limit) {
    ++counters_.rx_missed;
    ++per_queue_missed_[queue];
    if (conn) {
      ++counters_.rx_dropped_conn;
    } else if (cfg_.overload_policy != OverloadPolicy::kDropNew) {
      ++counters_.rx_shed_regular;
    }
    pkt->pool()->free(pkt);
    return;
  }
  pkt->ts_rx = sim_.now();
  const bool was_empty = q.empty();
  q.push_back(pkt);
  ++counters_.rx_packets;
  if (was_empty && listener_ != nullptr) {
    listener_->rx_ready(queue);
  }
}

u32 SimNic::rx_burst(u16 queue, net::Packet** out, u32 max) {
  SPRAYER_CHECK(queue < queues_.size());
  auto& q = queues_[queue];
  u32 n = 0;
  while (n < max && !q.empty()) {
    out[n++] = q.front();
    q.pop_front();
  }
  return n;
}

void SimNic::tx(u8 port, net::Packet* pkt) {
  SPRAYER_CHECK(port < tx_links_.size());
  SPRAYER_CHECK_MSG(tx_links_[port] != nullptr, "tx port has no link");
  ++counters_.tx_packets;
  tx_links_[port]->send(pkt);
}

}  // namespace sprayer::nic

// Flow Director model (Intel 82599 "perfect match" filters).
//
// Flow Director was designed to pin specific flows to queues by matching
// header fields exactly. The paper's trick (§4) reprograms it to match on
// the *low bits of the TCP checksum* — a field that looks random — so TCP
// packets are uniformly distributed over queues with zero software work.
// Two hardware limits matter and are modeled here:
//   * the rule table holds at most 8 K perfect-match filters, which is why
//     the trick masks down to ceil(log2(cores)) checksum bits and installs
//     exactly 2^b rules, exhausting the match space;
//   * FDIR lookups cap the NIC around 10 Mpps (the plateau in Fig. 6a).
//     The rate cap itself is enforced by SimNic.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "net/five_tuple.hpp"
#include "net/packet.hpp"

namespace sprayer::nic {

class FlowDirector {
 public:
  /// 82599 perfect-match filter capacity.
  static constexpr u32 kMaxRules = 8192;

  /// Exact five-tuple rule (the conventional use of Flow Director).
  Status add_exact_rule(const net::FiveTuple& tuple, u16 queue);

  /// Masked TCP-checksum rule (the Sprayer trick): packets whose
  /// (checksum & mask) == value go to `queue`. All rules must share one mask.
  Status add_checksum_rule(u16 mask, u16 value, u16 queue);

  /// Install the full Sprayer configuration: 2^b checksum rules where
  /// b = ceil(log2(num_queues)), exhausting the match space so every TCP
  /// packet matches. Rule v routes to queue v % num_queues.
  Status program_checksum_spray(u32 num_queues);

  void clear() noexcept;

  /// Match a parsed packet. Only TCP packets are considered (82599 FDIR
  /// filters are per-L4-type; we model the TCP filter set the paper uses).
  /// Returns the destination queue, or nullopt to fall back to RSS.
  [[nodiscard]] std::optional<u16> match(net::Packet& pkt) const noexcept;

  [[nodiscard]] u32 rule_count() const noexcept {
    return static_cast<u32>(exact_.size()) + checksum_rule_count_;
  }

 private:
  std::unordered_map<net::FiveTuple, u16, net::FiveTupleHash> exact_;
  u16 checksum_mask_ = 0;
  u32 checksum_rule_count_ = 0;
  // Dense table indexed by (checksum & mask); 0xffff = no rule.
  std::vector<u16> checksum_queues_;
};

}  // namespace sprayer::nic

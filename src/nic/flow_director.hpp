// Flow Director model (Intel 82599 "perfect match" filters).
//
// Flow Director was designed to pin specific flows to queues by matching
// header fields exactly. The paper's trick (§4) reprograms it to match on
// the *low bits of the TCP checksum* — a field that looks random — so TCP
// packets are uniformly distributed over queues with zero software work.
// Two hardware limits matter and are modeled here:
//   * the rule table holds at most 8 K perfect-match filters, which is why
//     the trick masks down to ceil(log2(cores)) checksum bits and installs
//     exactly 2^b rules, exhausting the match space;
//   * FDIR lookups cap the NIC around 10 Mpps (the plateau in Fig. 6a).
//     The rate cap itself is enforced by SimNic.
//
// Rule precedence contract: exact five-tuple rules ALWAYS win over masked
// checksum rules. A packet is matched against the exact table first and
// falls through to the checksum table only on a miss — so a pinned flow
// gets RSS-style per-flow placement while every other TCP packet keeps
// spraying. This mirrors the 82599, where a perfect-match filter on the
// full tuple is more specific than one whose input mask ignores everything
// but checksum bits. The adaptive spray layer (core/adaptive_spray.hpp)
// relies on this to pin mice underneath an installed spray rule set.
//
// Budget contract: exact and checksum rules share the one 8 K table. Both
// add paths return Error::Code::kExhausted — and only that code — when the
// shared capacity is gone, so callers can tell "table full" (back off, keep
// spraying) from kAlreadyExists (duplicate rule; harmless) without string
// matching. remaining_exact_capacity() lets a caller budget insertions
// up front instead of probing for kExhausted.
#pragma once

#include <optional>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "net/five_tuple.hpp"
#include "net/packet.hpp"

namespace sprayer::nic {

class FlowDirector {
 public:
  /// 82599 perfect-match filter capacity.
  static constexpr u32 kMaxRules = 8192;

  /// Which rule class claimed a packet (see match_detail()).
  enum class MatchKind : u8 {
    kNone,      // no rule matched: fall back to RSS
    kExact,     // exact five-tuple rule (pinned flow)
    kChecksum,  // masked checksum rule (sprayed)
  };
  struct MatchResult {
    u16 queue = 0;
    MatchKind kind = MatchKind::kNone;
    [[nodiscard]] bool hit() const noexcept { return kind != MatchKind::kNone; }
  };

  /// Exact five-tuple rule (the conventional use of Flow Director). Takes
  /// precedence over any checksum rule. Returns kExhausted when the shared
  /// 8 K table is full, kAlreadyExists on a duplicate tuple.
  Status add_exact_rule(const net::FiveTuple& tuple, u16 queue);

  /// Eviction hook: remove one exact rule, freeing its table slot. Returns
  /// true when a rule for `tuple` existed. Checksum rules are not
  /// individually removable (the 82599 reprograms the whole masked set);
  /// use clear() for those.
  bool remove_exact_rule(const net::FiveTuple& tuple) noexcept;

  /// Masked TCP-checksum rule (the Sprayer trick): packets whose
  /// (checksum & mask) == value go to `queue`. All rules must share one mask.
  Status add_checksum_rule(u16 mask, u16 value, u16 queue);

  /// Install the full Sprayer configuration: 2^b checksum rules where
  /// b = ceil(log2(num_queues)), exhausting the match space so every TCP
  /// packet matches. Rule v routes to queue v % num_queues.
  Status program_checksum_spray(u32 num_queues);

  void clear() noexcept;

  /// Match a parsed packet. Only TCP packets are considered (82599 FDIR
  /// filters are per-L4-type; we model the TCP filter set the paper uses).
  /// Returns the destination queue, or nullopt to fall back to RSS.
  [[nodiscard]] std::optional<u16> match(net::Packet& pkt) const noexcept {
    const MatchResult r = match_detail(pkt);
    if (!r.hit()) return std::nullopt;
    return r.queue;
  }

  /// match() plus which rule class fired — the adaptive layer steers
  /// checksum-sprayed packets but must leave exact-pinned ones alone.
  [[nodiscard]] MatchResult match_detail(net::Packet& pkt) const noexcept;

  /// Checksum-rules-only verdict: skips the exact table entirely. For the
  /// adaptive driver path, whose flow cache mirrors the exact rule set (a
  /// pin rule exists only while its cache slot is kPinned), so pinned flows
  /// are resolved from the cache and only spray decisions need the rule
  /// lookup. Never returns kExact.
  [[nodiscard]] MatchResult match_checksum(net::Packet& pkt) const noexcept {
    if (!pkt.is_tcp() || checksum_rule_count_ == 0) return {};
    return checksum_verdict(pkt.tcp().checksum());
  }

  [[nodiscard]] u32 rule_count() const noexcept {
    return exact_rule_count() + checksum_rule_count();
  }
  [[nodiscard]] u32 exact_rule_count() const noexcept {
    return exact_count_;
  }
  [[nodiscard]] u32 checksum_rule_count() const noexcept {
    return checksum_rule_count_;
  }
  /// Exact rules that can still be added before the shared table is full.
  [[nodiscard]] u32 remaining_exact_capacity() const noexcept {
    const u32 used = rule_count();
    return used >= kMaxRules ? 0 : kMaxRules - used;
  }

 private:
  // Exact rules live in an open-addressed, linear-probe table rather than a
  // std::unordered_map: match_detail() runs once per injected TCP packet on
  // the driver thread, where a node-based map costs a hash-bucket pointer
  // chase per probe. Slots are kept at most half full so a miss (the common
  // case when only a minority of flows are pinned) terminates on the first
  // empty slot after ~1 cache line.
  struct ExactSlot {
    u64 hash = 0;
    net::FiveTuple tuple{};
    u16 queue = 0;
    u8 state = 0;  // kSlotEmpty / kSlotFull / kSlotTombstone
  };
  static constexpr u8 kSlotEmpty = 0;
  static constexpr u8 kSlotFull = 1;
  static constexpr u8 kSlotTombstone = 2;

  [[nodiscard]] const ExactSlot* find_exact(const net::FiveTuple& tuple,
                                            u64 hash) const noexcept;
  void rehash_exact(u32 new_capacity);
  [[nodiscard]] MatchResult checksum_verdict(u16 cks) const noexcept;

  std::vector<ExactSlot> exact_slots_;  // power-of-two sized, or empty
  u32 exact_count_ = 0;
  u32 exact_tombstones_ = 0;

  u16 checksum_mask_ = 0;
  u32 checksum_rule_count_ = 0;
  // When the mask is one contiguous bit run (always true for
  // program_checksum_spray()), the dense index is a mask-and-shift instead
  // of the general bit-compress loop.
  bool checksum_mask_contiguous_ = false;
  u8 checksum_shift_ = 0;
  // Dense table indexed by the compressed (checksum & mask); 0xffff = none.
  std::vector<u16> checksum_queues_;
};

}  // namespace sprayer::nic

// Receive-Side Scaling engine: Toeplitz hash + 128-entry indirection table,
// as implemented by the Intel 82599 (the paper's NIC and its baseline
// dispatch mechanism).
#pragma once

#include <array>

#include "common/check.hpp"
#include "common/types.hpp"
#include "hash/toeplitz.hpp"
#include "net/packet.hpp"

namespace sprayer::nic {

class RssEngine {
 public:
  static constexpr u32 kIndirectionEntries = 128;

  /// Round-robin indirection table over `num_queues`, symmetric key by
  /// default (the paper configures the symmetric key so both directions of
  /// a connection reach the same core, §5 [44]).
  explicit RssEngine(u32 num_queues,
                     const hash::ToeplitzKey& key = hash::kSymmetricKey)
      : key_(key) {
    SPRAYER_CHECK(num_queues >= 1);
    for (u32 i = 0; i < kIndirectionEntries; ++i) {
      table_[i] = static_cast<u16>(i % num_queues);
    }
  }

  void set_indirection(u32 entry, u16 queue) {
    SPRAYER_CHECK(entry < kIndirectionEntries);
    table_[entry] = queue;
  }

  /// RSS hash of a parsed packet: 4-tuple input for TCP/UDP, 2-tuple for
  /// other IPv4 (extract_five_tuple zeroes the ports then, and zero bytes
  /// contribute nothing to Toeplitz, so one table-driven 4-tuple hash covers
  /// both), 0 (queue 0) for non-IP.
  [[nodiscard]] u32 hash_of(net::Packet& pkt) const noexcept {
    if (!pkt.is_ipv4()) return 0;
    return lut_.v4_l4(pkt.five_tuple());
  }

  [[nodiscard]] u32 hash_of(const net::FiveTuple& t) const noexcept {
    return lut_.v4_l4(t);
  }

  [[nodiscard]] u16 queue_for_hash(u32 hash) const noexcept {
    return table_[hash % kIndirectionEntries];
  }

  [[nodiscard]] u16 queue_for(net::Packet& pkt) const noexcept {
    return queue_for_hash(hash_of(pkt));
  }

  [[nodiscard]] const hash::ToeplitzKey& key() const noexcept { return key_; }

 private:
  hash::ToeplitzKey key_;
  hash::ToeplitzLut lut_{key_};  // table-driven Toeplitz (12 KiB per engine)
  std::array<u16, kIndirectionEntries> table_{};
};

}  // namespace sprayer::nic

#include "nic/pktgen.hpp"

#include "net/headers.hpp"

namespace sprayer::nic {

std::vector<net::FiveTuple> random_tcp_flows(u32 n, u64 seed) {
  Rng rng(seed);
  std::vector<net::FiveTuple> flows;
  flows.reserve(n);
  while (flows.size() < n) {
    net::FiveTuple t;
    t.src_ip = net::Ipv4Addr{static_cast<u32>(
        0x0a000000u | rng.uniform(1u << 24))};            // 10.0.0.0/8
    t.dst_ip = net::Ipv4Addr{static_cast<u32>(
        0xc0a80000u | rng.uniform(1u << 16))};            // 192.168/16
    t.src_port = static_cast<u16>(rng.uniform_range(1024, 65535));
    t.dst_port = static_cast<u16>(rng.uniform_range(1024, 65535));
    t.protocol = net::kProtoTcp;
    flows.push_back(t);
  }
  return flows;
}

PacketGen::PacketGen(sim::Simulator& sim, net::PacketPool& pool,
                     sim::Link& out, PktGenConfig cfg)
    : sim_(sim),
      pool_(pool),
      out_(out),
      cfg_(cfg),
      rng_(cfg.seed),
      flows_(random_tcp_flows(cfg.num_flows, cfg.seed ^ 0xf10f10f1ULL)),
      flow_seq_(cfg.num_flows, 1) {
  SPRAYER_CHECK(cfg.num_flows >= 1);
  SPRAYER_CHECK(cfg.rate_pps > 0);
  SPRAYER_CHECK_MSG(cfg.frame_len >= net::kMinFrameLen,
                    "frame below Ethernet minimum");
}

void PacketGen::start() {
  if (cfg_.send_initial_syns) {
    // One SYN per flow, back-to-back at t=0: lets stateful NFs install
    // per-flow state at the designated cores before the measured traffic.
    for (const auto& flow : flows_) {
      net::TcpSegmentSpec spec;
      spec.tuple = flow;
      spec.flags = net::TcpFlags::kSyn;
      spec.seq = 0;
      net::Packet* pkt = net::build_tcp_raw(pool_, spec);
      if (pkt != nullptr) {
        pkt->ts_gen = sim_.now();
        out_.send(pkt);
      }
    }
  }
  sim_.schedule_in(0, this);
}

void PacketGen::handle_event(u64 /*tag*/) {
  if (cfg_.stop_at != 0 && sim_.now() >= cfg_.stop_at) return;
  emit_packet();
  const Time gap =
      cfg_.poisson
          ? static_cast<Time>(rng_.exponential(1e12 / cfg_.rate_pps))
          : static_cast<Time>(1e12 / cfg_.rate_pps);
  sim_.schedule_in(gap, this);
}

void PacketGen::emit_packet() {
  if (cfg_.new_flow_every != 0 && sent_ % cfg_.new_flow_every == 0) {
    // Connection churn: open a fresh flow with a SYN.
    const auto churn = random_tcp_flows(1, rng_.next());
    net::TcpSegmentSpec spec;
    spec.tuple = churn[0];
    spec.flags = net::TcpFlags::kSyn;
    net::Packet* pkt = net::build_tcp_raw(pool_, spec);
    if (pkt != nullptr) {
      pkt->ts_gen = sim_.now();
      out_.send(pkt);
      ++sent_;
      return;
    }
  }
  const u32 flow_index = next_flow_;
  next_flow_ = (next_flow_ + 1) % cfg_.num_flows;

  // Randomized payload: its bytes make the TCP checksum uniformly random.
  u8 payload[16];
  const u64 r1 = rng_.next();
  const u64 r2 = rng_.next();
  std::memcpy(payload, &r1, 8);
  std::memcpy(payload + 8, &r2, 8);

  net::TcpSegmentSpec spec;
  spec.tuple = flows_[flow_index];
  spec.flags = net::TcpFlags::kAck;
  spec.seq = flow_seq_[flow_index]++;
  const u32 payload_len = cfg_.frame_len - net::kTcpHeadersLen;
  spec.payload_len = payload_len;
  spec.payload = std::span<const u8>{
      payload, std::min<std::size_t>(sizeof(payload), payload_len)};

  net::Packet* pkt = net::build_tcp_raw(pool_, spec);
  if (pkt == nullptr) return;  // pool exhausted: generator backpressure
  pkt->ts_gen = sim_.now();
  pkt->user_tag = flow_index;
  out_.send(pkt);
  ++sent_;
}

}  // namespace sprayer::nic

// Congestion-control algorithms: NewReno and CUBIC (the paper's experiments
// use stock Linux CUBIC, §5). The connection machinery handles duplicate
// ACKs, fast retransmit / recovery and RTO; these classes own only the
// window arithmetic.
#pragma once

#include <memory>

#include "common/types.hpp"
#include "common/units.hpp"

namespace sprayer::tcp {

enum class CcKind { kNewReno, kCubic };

class ICongestionControl {
 public:
  virtual ~ICongestionControl() = default;

  /// New data cumulatively acknowledged outside loss recovery.
  virtual void on_ack(u64 acked_bytes, Time now, Time srtt) = 0;
  /// Entering fast recovery: cut the window. `flight` is bytes in flight.
  virtual void on_loss(u64 flight, Time now) = 0;
  /// Retransmission timeout: collapse to one segment.
  virtual void on_rto(u64 flight, Time now) = 0;

  [[nodiscard]] virtual u64 cwnd() const noexcept = 0;
  [[nodiscard]] virtual u64 ssthresh() const noexcept = 0;
  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

class NewReno final : public ICongestionControl {
 public:
  NewReno(u32 mss, u32 initial_cwnd_segments) noexcept
      : mss_(mss), cwnd_(static_cast<u64>(mss) * initial_cwnd_segments) {}

  void on_ack(u64 acked_bytes, Time /*now*/, Time /*srtt*/) override {
    if (cwnd_ < ssthresh_) {
      cwnd_ += std::min<u64>(acked_bytes, mss_);  // slow start
    } else {
      // Congestion avoidance: ~1 MSS per RTT.
      cwnd_ += std::max<u64>(1, static_cast<u64>(mss_) * mss_ / cwnd_);
    }
  }

  void on_loss(u64 flight, Time /*now*/) override {
    ssthresh_ = std::max<u64>(flight / 2, 2ull * mss_);
    cwnd_ = ssthresh_;
  }

  void on_rto(u64 flight, Time /*now*/) override {
    ssthresh_ = std::max<u64>(flight / 2, 2ull * mss_);
    cwnd_ = mss_;
  }

  [[nodiscard]] u64 cwnd() const noexcept override { return cwnd_; }
  [[nodiscard]] u64 ssthresh() const noexcept override { return ssthresh_; }
  [[nodiscard]] const char* name() const noexcept override {
    return "newreno";
  }

 private:
  u32 mss_;
  u64 cwnd_;
  u64 ssthresh_ = ~0ull;
};

/// CUBIC per RFC 8312 (with fast convergence), window in bytes.
class Cubic final : public ICongestionControl {
 public:
  Cubic(u32 mss, u32 initial_cwnd_segments) noexcept
      : mss_(mss), cwnd_(static_cast<u64>(mss) * initial_cwnd_segments) {}

  void on_ack(u64 acked_bytes, Time now, Time srtt) override;
  void on_loss(u64 flight, Time now) override;
  void on_rto(u64 flight, Time now) override;

  [[nodiscard]] u64 cwnd() const noexcept override { return cwnd_; }
  [[nodiscard]] u64 ssthresh() const noexcept override { return ssthresh_; }
  [[nodiscard]] const char* name() const noexcept override { return "cubic"; }

 private:
  static constexpr double kC = 0.4;     // cubic scaling constant
  static constexpr double kBeta = 0.7;  // multiplicative decrease

  u32 mss_;
  u64 cwnd_;
  u64 ssthresh_ = ~0ull;
  double w_max_segments_ = 0.0;  // window before the last reduction
  double w_est_start_ = 0.0;     // window at epoch start (TCP-friendly est.)
  Time epoch_start_ = 0;
  double k_ = 0.0;  // time (seconds) to regrow to w_max
};

[[nodiscard]] std::unique_ptr<ICongestionControl> make_cc(
    CcKind kind, u32 mss, u32 initial_cwnd_segments);

[[nodiscard]] constexpr const char* to_string(CcKind k) noexcept {
  return k == CcKind::kNewReno ? "newreno" : "cubic";
}

}  // namespace sprayer::tcp

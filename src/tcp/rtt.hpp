// RTT estimation and retransmission timeout per RFC 6298.
//
// Note on the minimum RTO: Linux clamps at 200 ms, but the simulated RTTs
// here are tens of microseconds and experiments run for seconds, so a real
// RTO would zero out a run. We default to 10 ms (configurable), which keeps
// the RTO >> RTT (spurious-timeout-free) while letting runs recover. This
// substitution is documented in DESIGN.md.
#pragma once

#include "common/types.hpp"
#include "common/units.hpp"

namespace sprayer::tcp {

class RttEstimator {
 public:
  explicit RttEstimator(Time min_rto = 10 * kMillisecond,
                        Time initial_rto = 20 * kMillisecond,
                        Time max_rto = 2 * kSecond) noexcept
      : min_rto_(min_rto), max_rto_(max_rto), rto_(initial_rto) {}

  void sample(Time rtt) noexcept {
    if (srtt_ == 0) {
      srtt_ = rtt;
      rttvar_ = rtt / 2;
    } else {
      const Time delta = srtt_ > rtt ? srtt_ - rtt : rtt - srtt_;
      rttvar_ = (3 * rttvar_ + delta) / 4;
      srtt_ = (7 * srtt_ + rtt) / 8;
    }
    rto_ = clamp(srtt_ + 4 * rttvar_);
  }

  /// Exponential backoff after a retransmission timeout.
  void backoff() noexcept { rto_ = clamp(rto_ * 2); }

  [[nodiscard]] Time rto() const noexcept { return rto_; }
  [[nodiscard]] Time srtt() const noexcept { return srtt_; }
  [[nodiscard]] Time rttvar() const noexcept { return rttvar_; }
  [[nodiscard]] bool has_sample() const noexcept { return srtt_ != 0; }

 private:
  [[nodiscard]] Time clamp(Time t) const noexcept {
    if (t < min_rto_) return min_rto_;
    if (t > max_rto_) return max_rto_;
    return t;
  }

  Time min_rto_;
  Time max_rto_;
  Time srtt_ = 0;
  Time rttvar_ = 0;
  Time rto_;
};

}  // namespace sprayer::tcp

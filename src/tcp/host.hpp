// A simulated end host: owns TCP connections, demultiplexes incoming
// segments to them by five-tuple, accepts new connections on listening
// ports, and transmits through its attached link. Plays the role of the
// iperf3 client / server machines of the paper's testbed.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet_pool.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"
#include "tcp/connection.hpp"

namespace sprayer::tcp {

class Host final : public sim::IPacketSink,
                   public sim::IEventTarget,
                   public ISegmentOut {
 public:
  Host(sim::Simulator& sim, net::PacketPool& pool, std::string name)
      : sim_(sim), pool_(pool), name_(std::move(name)) {}

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  void attach_out(sim::Link& link) noexcept { out_ = &link; }

  /// Accept any incoming SYN (to any address/port) with this config.
  void listen_all(const TcpConfig& server_cfg) {
    listening_ = true;
    server_cfg_ = server_cfg;
  }

  /// Create an active connection (`tuple`: src = this host) and schedule
  /// its SYN at absolute time `at`.
  TcpConnection& open(const net::FiveTuple& tuple, const TcpConfig& cfg,
                      Time at, u64 seed);

  // sim::IPacketSink — ingress from the link.
  void receive(net::Packet* pkt) override;

  // sim::IEventTarget — delayed active opens.
  void handle_event(u64 tag) override;

  // ISegmentOut — connection egress.
  void output(net::Packet* pkt) override;

  [[nodiscard]] const std::vector<std::unique_ptr<TcpConnection>>&
  connections() const noexcept {
    return conns_;
  }
  [[nodiscard]] u64 unmatched_packets() const noexcept { return unmatched_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  sim::Simulator& sim_;
  net::PacketPool& pool_;
  std::string name_;
  sim::Link* out_ = nullptr;

  bool listening_ = false;
  TcpConfig server_cfg_;
  std::vector<std::unique_ptr<TcpConnection>> conns_;
  // Demux key: the connection tuple as seen from this host (src = local).
  std::unordered_map<net::FiveTuple, TcpConnection*, net::FiveTupleHash>
      by_tuple_;
  std::vector<u32> pending_opens_;  // indices into conns_, by event tag
  u64 unmatched_ = 0;
  u64 seed_counter_ = 0x1057;
};

}  // namespace sprayer::tcp

// Packet-level TCP connection endpoint.
//
// Implements what the paper's evaluation actually exercises in Linux TCP:
// three-way handshake, cumulative ACKs with SACK blocks, duplicate-ACK fast
// retransmit with SACK-scoreboard (pipe-limited) loss recovery,
// retransmission timeouts with go-back-N, timestamp-based RTT sampling, and
// pluggable congestion control (NewReno / CUBIC). Sequence numbers are
// 64-bit extended wire sequence numbers internally (no wrap bugs on > 4 GB
// transfers).
//
// One-directional data: an active (client) connection streams bytes to the
// passive (server) side, which acknowledges every segment — the iperf3
// workload of §5. Packet reordering — the phenomenon Sprayer introduces —
// appears as out-of-order arrivals producing duplicate ACKs; three of them
// trigger a (possibly spurious) fast retransmit and a window reduction,
// which is exactly the mechanism behind the throughput gap in Figure 7(b).
#pragma once

#include <map>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "net/packet_builder.hpp"
#include "net/packet_pool.hpp"
#include "sim/simulator.hpp"
#include "tcp/cc.hpp"
#include "tcp/options.hpp"
#include "tcp/rtt.hpp"
#include "tcp/seq.hpp"

namespace sprayer::tcp {

struct TcpConfig {
  u32 mss = 1460;
  u32 initial_cwnd_segments = 10;  // RFC 6928
  u32 dupack_threshold = 3;
  CcKind cc = CcKind::kCubic;
  Time min_rto = 10 * kMillisecond;   // see rtt.hpp header comment
  Time initial_rto = 20 * kMillisecond;
  Time max_rto = 2 * kSecond;
  u64 rcv_wnd = 1ull << 30;           // effectively unlimited (WS assumed)
  /// Bytes the active side streams; 0 = unlimited (duration-bounded runs).
  u64 bytes_to_send = 0;
  /// Cap on cwnd in bytes; models the socket send-buffer limit (Linux
  /// tcp_wmem-style). 0 = uncapped.
  u64 max_cwnd = 4ull << 20;
  bool sack_enabled = true;
  /// Linux-style reordering adaptation: when a SACK hole is filled by a
  /// late *original* arrival (not a retransmission), raise the duplicate-ACK
  /// threshold to the observed reordering distance. This is what lets
  /// stock Linux tolerate packet spraying (paper §1, [15]).
  bool adaptive_reordering = true;
  u32 max_reordering = 300;  // Linux sysctl tcp_max_reordering
  /// RACK-style time-based loss detection: once SACKed data sits above a
  /// hole for a quarter of an SRTT, treat the hole as lost and enter
  /// recovery even if the (adapted) dupACK threshold was never reached.
  /// Keeps loss detection working when reordering has inflated the
  /// threshold — the combination Linux uses.
  bool rack_enabled = true;
  u32 rack_reo_wnd_den = 4;  // reorder window = srtt / den
  Time rack_min_wnd = 10 * kMicrosecond;
  /// Delayed ACKs: acknowledge every Nth in-order segment (1 = every
  /// segment); out-of-order arrivals are always acked immediately.
  u32 ack_every = 2;
  Time delayed_ack_timeout = 1 * kMillisecond;
};

struct TcpStats {
  // Sender side.
  u64 segments_sent = 0;
  u64 data_bytes_sent = 0;       // includes retransmitted bytes
  u64 retransmits = 0;           // segments retransmitted (any cause)
  u64 fast_retransmits = 0;      // fast-retransmit (recovery entry) events
  u64 rtos = 0;                  // timeout events
  u64 acks_received = 0;
  u64 dupacks_received = 0;
  u64 sack_blocks_received = 0;
  u64 reordering_events = 0;   // SACK holes filled by late originals
  // Receiver side.
  u64 segments_received = 0;
  u64 bytes_delivered = 0;       // in-order goodput
  u64 ooo_segments = 0;          // arrived above rcv_nxt
  u64 dup_segments = 0;          // arrived entirely below rcv_nxt
  u64 acks_sent = 0;
  Time established_at = 0;
  Time closed_at = 0;
};

enum class TcpState {
  kClosed,
  kSynSent,
  kSynRcvd,
  kEstablished,
  kFinWait,    // our FIN sent, not yet acked
  kFinWait2,   // our FIN acked, waiting for peer FIN
  kLastAck,    // passive close: our FIN sent after receiving peer's
  kDone,
};

[[nodiscard]] const char* to_string(TcpState s) noexcept;

/// Where this connection's segments go (the host's egress link).
class ISegmentOut {
 public:
  virtual ~ISegmentOut() = default;
  virtual void output(net::Packet* pkt) = 0;
};

class TcpConnection final : public sim::IEventTarget {
 public:
  /// `tuple` is from this endpoint's perspective (src = local).
  TcpConnection(sim::Simulator& sim, net::PacketPool& pool, ISegmentOut& out,
                const net::FiveTuple& tuple, const TcpConfig& cfg,
                bool active, u64 seed);

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Active open: send the SYN.
  void open();

  /// Passive open: process the incoming SYN that created this connection.
  void accept_syn(u32 peer_iss, u32 peer_tsval);

  /// Deliver an incoming segment (takes ownership of the packet).
  void on_segment(net::Packet* pkt);

  // sim::IEventTarget — RTO timer.
  void handle_event(u64 tag) override;

  [[nodiscard]] TcpState state() const noexcept { return state_; }
  [[nodiscard]] const TcpStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const net::FiveTuple& tuple() const noexcept { return tuple_; }
  /// Bytes of application data cumulatively acknowledged (sender side).
  [[nodiscard]] u64 bytes_acked() const noexcept;
  [[nodiscard]] const ICongestionControl& cc() const noexcept { return *cc_; }
  [[nodiscard]] const RttEstimator& rtt() const noexcept { return rtt_; }
  [[nodiscard]] bool in_recovery() const noexcept { return in_recovery_; }
  /// Current duplicate-ACK threshold (grows under detected reordering).
  [[nodiscard]] u32 reordering_threshold() const noexcept {
    return reordering_;
  }

 private:
  // --- segment emission ---
  void send_syn();
  void send_synack();
  void send_pure_ack();
  void send_data_segment(u64 ext_seq, u32 len, bool is_retransmit);
  void send_fin(u64 ext_seq);
  void emit(net::TcpSegmentSpec& spec, bool count_data, u32 data_len,
            bool is_retransmit, bool include_sack);

  // --- sender machinery ---
  void try_send();
  void recovery_send();
  void enter_recovery();
  void exit_recovery();
  void on_ack_segment(u64 ext_ack, bool has_payload, u32 tsecr,
                      const ParsedOptions& opts);
  /// Returns true if the blocks added previously-unknown SACKed data.
  bool apply_sack_blocks(const ParsedOptions& opts);
  void add_sacked_range(u64 start, u64 end);
  void prune_sacked_below(u64 seq);
  /// First unsacked, not-yet-retransmitted hole at/after hole_cursor_ and
  /// below recover_point_; false if none.
  [[nodiscard]] bool next_hole(u64& start, u32& len) const;
  void retransmit_front();
  void arm_rto();
  void cancel_rto();
  void maybe_arm_rack();
  [[nodiscard]] u64 flight() const noexcept { return snd_nxt_ - snd_una_; }
  /// FACK-style estimate of bytes actually in the network: everything above
  /// the forward-most SACKed byte, plus retransmissions still out. Holes
  /// below the FACK point are presumed lost and not counted — without this,
  /// recovery deadlocks waiting for bytes that will never be acked.
  [[nodiscard]] u64 pipe() const noexcept {
    u64 fack = snd_una_;
    if (!sacked_.empty()) fack = std::max(fack, sacked_.rbegin()->second);
    return (snd_nxt_ - fack) + retx_out_;
  }
  [[nodiscard]] u64 data_limit() const noexcept;
  [[nodiscard]] u64 usable_window() const noexcept;
  [[nodiscard]] u32 now_ts() const noexcept {
    return static_cast<u32>(sim_.now() / kNanosecond);
  }

  // --- receiver machinery ---
  void on_data(u64 ext_seq, u32 payload_len, bool fin);
  void deliver_in_order();
  void maybe_passive_close();
  void ack_now();
  void maybe_delay_ack();
  [[nodiscard]] u32 build_sack_blocks(SackBlock* out) const;

  sim::Simulator& sim_;
  net::PacketPool& pool_;
  ISegmentOut& out_;
  net::FiveTuple tuple_;
  TcpConfig cfg_;
  bool active_;
  Rng rng_;

  TcpState state_ = TcpState::kClosed;
  std::unique_ptr<ICongestionControl> cc_;
  RttEstimator rtt_;
  TcpStats stats_;

  // Sender (extended wire sequence space; the SYN occupies iss_).
  u32 iss_;
  u64 snd_una_ = 0;
  u64 snd_nxt_ = 0;
  u64 highest_sent_ = 0;  // high-water mark of snd_nxt_ (retransmit acctg)
  u64 data_start_ = 0;    // iss_ + 1
  bool fin_sent_ = false;
  u64 fin_seq_ = 0;       // extended seq the FIN occupies (valid if fin_sent_)
  u32 dupacks_ = 0;
  u32 reordering_ = 3;    // adaptive dupack threshold (init from config)
  bool in_recovery_ = false;
  u64 recover_point_ = 0;
  u64 hole_cursor_ = 0;   // holes below this were already retransmitted
  u64 retx_out_ = 0;      // retransmitted bytes not yet acked (this episode)
  std::map<u64, u64> sacked_;  // scoreboard: SACKed intervals [start, end)
  u64 sacked_total_ = 0;       // sum of interval lengths in sacked_
  u64 timer_gen_ = 0;     // invalidates stale RTO events
  bool timer_armed_ = false;
  u64 delack_gen_ = 0;    // invalidates stale delayed-ACK events
  bool delack_armed_ = false;
  u64 rack_gen_ = 0;      // invalidates stale RACK reorder-window events
  bool rack_armed_ = false;
  u64 rack_snd_una_ = 0;  // snd_una_ when the RACK timer was armed

  // Receiver (extended wire sequence space of the peer).
  u64 rcv_nxt_ = 0;       // next expected extended seq
  u64 rcv_data_start_ = 0;
  std::map<u64, u64> ooo_;  // out-of-order intervals [start, end)
  u64 last_ooo_start_ = 0;  // interval of the most recent OOO arrival
  u32 unacked_segments_ = 0;  // in-order segments since the last ACK sent
  bool peer_fin_received_ = false;
  u64 peer_fin_seq_ = 0;
  u32 ts_recent_ = 0;     // last peer tsval (echoed in tsecr)
};

}  // namespace sprayer::tcp

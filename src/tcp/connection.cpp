#include "tcp/connection.hpp"

#include <algorithm>

#include "net/headers.hpp"

namespace sprayer::tcp {

namespace {
/// Extended sequence numbers start well away from zero so that unwrap can
/// never underflow on stray old segments.
constexpr u64 kExtBase = 1ull << 33;

constexpr u64 ext_init(u32 wire) noexcept { return kExtBase + wire; }
}  // namespace

const char* to_string(TcpState s) noexcept {
  switch (s) {
    case TcpState::kClosed: return "closed";
    case TcpState::kSynSent: return "syn-sent";
    case TcpState::kSynRcvd: return "syn-rcvd";
    case TcpState::kEstablished: return "established";
    case TcpState::kFinWait: return "fin-wait";
    case TcpState::kFinWait2: return "fin-wait-2";
    case TcpState::kLastAck: return "last-ack";
    case TcpState::kDone: return "done";
  }
  return "?";
}

TcpConnection::TcpConnection(sim::Simulator& sim, net::PacketPool& pool,
                             ISegmentOut& out, const net::FiveTuple& tuple,
                             const TcpConfig& cfg, bool active, u64 seed)
    : sim_(sim),
      pool_(pool),
      out_(out),
      tuple_(tuple),
      cfg_(cfg),
      active_(active),
      rng_(seed),
      cc_(make_cc(cfg.cc, cfg.mss, cfg.initial_cwnd_segments)),
      rtt_(cfg.min_rto, cfg.initial_rto, cfg.max_rto),
      iss_(static_cast<u32>(rng_.next())) {
  reordering_ = cfg.dupack_threshold;
  snd_una_ = ext_init(iss_);
  snd_nxt_ = snd_una_;
  highest_sent_ = snd_una_;
  data_start_ = snd_una_ + 1;  // SYN occupies iss_
}

u64 TcpConnection::bytes_acked() const noexcept {
  if (snd_una_ <= data_start_) return 0;
  u64 acked = snd_una_ - data_start_;
  if (fin_sent_ && snd_una_ > fin_seq_) acked -= 1;  // exclude the FIN
  return acked;
}

u64 TcpConnection::data_limit() const noexcept {
  if (!active_) return data_start_;  // passive side streams no data
  if (cfg_.bytes_to_send == 0) return ~0ull;
  return data_start_ + cfg_.bytes_to_send;
}

u64 TcpConnection::usable_window() const noexcept {
  u64 w = cc_->cwnd();
  if (cfg_.max_cwnd != 0) w = std::min(w, cfg_.max_cwnd);
  return std::min(w, cfg_.rcv_wnd);
}

// --- open / accept ------------------------------------------------------

void TcpConnection::open() {
  SPRAYER_CHECK_MSG(state_ == TcpState::kClosed, "open() on used connection");
  SPRAYER_CHECK_MSG(active_, "open() on a passive connection");
  state_ = TcpState::kSynSent;
  send_syn();
  snd_nxt_ = snd_una_ + 1;
  highest_sent_ = snd_nxt_;
  arm_rto();
}

void TcpConnection::accept_syn(u32 peer_iss, u32 peer_tsval) {
  SPRAYER_CHECK_MSG(state_ == TcpState::kClosed && !active_,
                    "accept_syn() on a non-listening connection");
  rcv_nxt_ = ext_init(peer_iss) + 1;
  rcv_data_start_ = rcv_nxt_;
  ts_recent_ = peer_tsval;
  state_ = TcpState::kSynRcvd;
  send_synack();
  snd_nxt_ = snd_una_ + 1;
  highest_sent_ = snd_nxt_;
  arm_rto();
}

// --- segment emission -----------------------------------------------------

void TcpConnection::emit(net::TcpSegmentSpec& spec, bool count_data,
                         u32 data_len, bool is_retransmit, bool include_sack) {
  OptionsBuilder opts(now_ts(), ts_recent_);
  if (include_sack && cfg_.sack_enabled && !ooo_.empty()) {
    SackBlock blocks[kMaxSackBlocks];
    const u32 n = build_sack_blocks(blocks);
    opts.add_sack(std::span<const SackBlock>{blocks, n});
  }
  spec.options = opts.span();
  spec.tuple = tuple_;
  net::Packet* pkt = net::build_tcp_raw(pool_, spec);
  if (pkt == nullptr) return;  // pool exhausted: RTO will recover
  ++stats_.segments_sent;
  if (count_data) {
    stats_.data_bytes_sent += data_len;
    if (is_retransmit) ++stats_.retransmits;
  }
  out_.output(pkt);
}

void TcpConnection::send_syn() {
  net::TcpSegmentSpec spec;
  spec.seq = static_cast<u32>(snd_una_);
  spec.flags = net::TcpFlags::kSyn;
  emit(spec, false, 0, false, false);
}

void TcpConnection::send_synack() {
  net::TcpSegmentSpec spec;
  spec.seq = static_cast<u32>(snd_una_);
  spec.ack = static_cast<u32>(rcv_nxt_);
  spec.flags = net::TcpFlags::kSyn | net::TcpFlags::kAck;
  emit(spec, false, 0, false, false);
}

void TcpConnection::send_pure_ack() {
  net::TcpSegmentSpec spec;
  spec.seq = static_cast<u32>(snd_nxt_);
  spec.ack = static_cast<u32>(rcv_nxt_);
  spec.flags = net::TcpFlags::kAck;
  emit(spec, false, 0, false, true);
  ++stats_.acks_sent;
}

void TcpConnection::send_data_segment(u64 ext_seq, u32 len,
                                      bool is_retransmit) {
  net::TcpSegmentSpec spec;
  spec.seq = static_cast<u32>(ext_seq);
  spec.ack = static_cast<u32>(rcv_nxt_);
  spec.flags = net::TcpFlags::kAck;
  spec.payload_len = len;
  // Random leading payload bytes: models real application data, and gives
  // the TCP checksum the uniformity checksum-spraying relies on.
  u8 head[8];
  const u64 r = rng_.next();
  std::memcpy(head, &r, sizeof(head));
  spec.payload = std::span<const u8>{
      head, std::min<std::size_t>(sizeof(head), len)};
  emit(spec, true, len, is_retransmit, true);
}

void TcpConnection::send_fin(u64 ext_seq) {
  net::TcpSegmentSpec spec;
  spec.seq = static_cast<u32>(ext_seq);
  spec.ack = static_cast<u32>(rcv_nxt_);
  spec.flags = net::TcpFlags::kFin | net::TcpFlags::kAck;
  emit(spec, false, 0, false, false);
}

// --- sender ---------------------------------------------------------------

void TcpConnection::try_send() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kSynRcvd) {
    return;
  }
  if (in_recovery_) {
    recovery_send();
    return;
  }
  const u64 wnd = usable_window();
  const u64 limit = data_limit();
  while (snd_nxt_ < limit && flight() < wnd) {
    const u32 len =
        static_cast<u32>(std::min<u64>(cfg_.mss, limit - snd_nxt_));
    // Sender-side silly-window avoidance: wait for the window to fit a full
    // segment rather than emitting runts as cwnd creeps up byte by byte.
    if (flight() + len > wnd) break;
    // Below the high-water mark means this range was sent before (we are
    // clocking out a go-back-N resend after an RTO).
    send_data_segment(snd_nxt_, len, snd_nxt_ < highest_sent_);
    snd_nxt_ += len;
    if (snd_nxt_ > highest_sent_) highest_sent_ = snd_nxt_;
  }
  // Finite active transfers close with a FIN once all data is out.
  if (active_ && cfg_.bytes_to_send != 0 && !fin_sent_ &&
      snd_nxt_ == limit && state_ == TcpState::kEstablished) {
    fin_seq_ = snd_nxt_;
    send_fin(fin_seq_);
    snd_nxt_ += 1;
    if (snd_nxt_ > highest_sent_) highest_sent_ = snd_nxt_;
    fin_sent_ = true;
    state_ = TcpState::kFinWait;
  }
  if (flight() > 0 && !timer_armed_) arm_rto();
}

bool TcpConnection::next_hole(u64& start, u32& len) const {
  u64 cursor = std::max(hole_cursor_, snd_una_);
  // Only bytes below the forward-most SACKed byte can be presumed lost;
  // anything above it is merely in flight and must not be retransmitted.
  const u64 fack = sacked_.empty() ? snd_una_ : sacked_.rbegin()->second;
  const u64 limit = std::min(
      {recover_point_, fack, fin_sent_ ? fin_seq_ : ~u64{0}});
  while (cursor < limit) {
    // Find the SACK interval covering or following `cursor`.
    auto it = sacked_.upper_bound(cursor);
    if (it != sacked_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > cursor) {
        cursor = prev->second;  // inside a SACKed range: skip it
        continue;
      }
    }
    const u64 hole_end =
        (it != sacked_.end()) ? std::min(it->first, limit) : limit;
    if (cursor >= hole_end) return false;
    start = cursor;
    len = static_cast<u32>(std::min<u64>(cfg_.mss, hole_end - cursor));
    return true;
  }
  return false;
}

void TcpConnection::recovery_send() {
  const u64 wnd = usable_window();
  const u64 limit = data_limit();
  for (;;) {
    if (pipe() >= wnd) break;
    u64 hole_start;
    u32 hole_len;
    if (cfg_.sack_enabled && next_hole(hole_start, hole_len)) {
      send_data_segment(hole_start, hole_len, true);
      hole_cursor_ = hole_start + hole_len;
      retx_out_ += hole_len;
      continue;
    }
    // No retransmittable hole: send new data to keep the ACK clock going.
    if (snd_nxt_ < limit) {
      const u32 len =
          static_cast<u32>(std::min<u64>(cfg_.mss, limit - snd_nxt_));
      if (pipe() + len > wnd) break;  // no runt segments (SWS avoidance)
      send_data_segment(snd_nxt_, len, snd_nxt_ < highest_sent_);
      snd_nxt_ += len;
      if (snd_nxt_ > highest_sent_) highest_sent_ = snd_nxt_;
      continue;
    }
    break;
  }
  if (flight() > 0 && !timer_armed_) arm_rto();
}

void TcpConnection::retransmit_front() {
  if (fin_sent_ && snd_una_ == fin_seq_) {
    send_fin(fin_seq_);
    ++stats_.retransmits;
    return;
  }
  const u64 seg_end = fin_sent_ ? fin_seq_ : snd_nxt_;
  if (seg_end <= snd_una_) return;
  const u32 len =
      static_cast<u32>(std::min<u64>(cfg_.mss, seg_end - snd_una_));
  send_data_segment(snd_una_, len, true);
}

void TcpConnection::enter_recovery() {
  in_recovery_ = true;
  ++rack_gen_;  // cancel any pending RACK timer
  rack_armed_ = false;
  recover_point_ = snd_nxt_;
  hole_cursor_ = snd_una_;
  cc_->on_loss(flight(), sim_.now());
  ++stats_.fast_retransmits;
  // Always retransmit the front segment immediately (it is the presumed
  // loss), then fill further holes pipe-limited.
  const u64 front_len = std::min<u64>(cfg_.mss, snd_nxt_ - snd_una_);
  retransmit_front();
  retx_out_ += front_len;
  hole_cursor_ = std::max(hole_cursor_, snd_una_ + front_len);
  arm_rto();
  recovery_send();
}

void TcpConnection::exit_recovery() {
  in_recovery_ = false;
  dupacks_ = 0;
  hole_cursor_ = 0;
  retx_out_ = 0;
}

void TcpConnection::add_sacked_range(u64 start, u64 end) {
  if (start >= end) return;
  auto it = sacked_.lower_bound(start);
  if (it != sacked_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) {
      start = prev->first;
      end = std::max(end, prev->second);
      sacked_total_ -= prev->second - prev->first;
      it = sacked_.erase(prev);
    }
  }
  while (it != sacked_.end() && it->first <= end) {
    end = std::max(end, it->second);
    sacked_total_ -= it->second - it->first;
    it = sacked_.erase(it);
  }
  sacked_[start] = end;
  sacked_total_ += end - start;
}

void TcpConnection::prune_sacked_below(u64 seq) {
  auto it = sacked_.begin();
  while (it != sacked_.end() && it->first < seq) {
    if (it->second <= seq) {
      sacked_total_ -= it->second - it->first;
      it = sacked_.erase(it);
    } else {
      sacked_total_ -= seq - it->first;
      sacked_.emplace(seq, it->second);
      sacked_.erase(it);
      break;
    }
  }
}

bool TcpConnection::apply_sack_blocks(const ParsedOptions& opts) {
  if (!cfg_.sack_enabled) return false;
  bool new_data = false;
  for (u32 i = 0; i < opts.num_sack; ++i) {
    const u64 s = seq_unwrap(opts.sack[i].start, snd_una_);
    const u64 e = seq_unwrap(opts.sack[i].end, snd_una_);
    if (s >= e || s < snd_una_ || e > snd_nxt_) continue;  // stale/bogus
    ++stats_.sack_blocks_received;
    const u64 before = sacked_total_;
    add_sacked_range(s, e);
    if (sacked_total_ > before) new_data = true;
  }
  return new_data;
}

void TcpConnection::on_ack_segment(u64 ext_ack, bool has_payload, u32 tsecr,
                                   const ParsedOptions& opts) {
  if (ext_ack > highest_sent_) return;  // acks data we never sent: ignore

  const bool new_sack = apply_sack_blocks(opts);

  // Reordering detection (Linux-style): a cumulative ACK that covers the
  // hole in front of already-SACKed data, while nothing was retransmitted,
  // means the hole was filled by a late *original* — reordering, not loss.
  // Raise the duplicate-ACK threshold to the observed displacement (the
  // FACK distance, in segments, that the late packet was overtaken by).
  if (cfg_.adaptive_reordering && !in_recovery_ && retx_out_ == 0 &&
      !sacked_.empty() && ext_ack > snd_una_ &&
      sacked_.begin()->first > snd_una_ &&
      ext_ack >= sacked_.begin()->first) {
    const u64 fack_end = sacked_.rbegin()->second;
    ++stats_.reordering_events;
    const u32 dist =
        static_cast<u32>((fack_end - snd_una_) / cfg_.mss) + 1;
    reordering_ =
        std::min(std::max(reordering_, dist), cfg_.max_reordering);
  }

  if (ext_ack > snd_una_) {
    const u64 acked = ext_ack - snd_una_;
    snd_una_ = ext_ack;
    // After an RTO go-back-N rewind an ACK can land above snd_nxt_ (the
    // original transmission arrived after all): never let flight underflow.
    if (snd_nxt_ < snd_una_) snd_nxt_ = snd_una_;
    retx_out_ = retx_out_ > acked ? retx_out_ - acked : 0;
    prune_sacked_below(snd_una_);
    ++stats_.acks_received;

    if (tsecr != 0) {
      const u32 delta_ns = now_ts() - tsecr;
      const Time rtt_sample = static_cast<Time>(delta_ns) * kNanosecond;
      if (rtt_sample > 0 && rtt_sample < 2 * kSecond) rtt_.sample(rtt_sample);
    }

    if (in_recovery_) {
      if (ext_ack >= recover_point_) {
        exit_recovery();
      } else {
        // Partial ack: keep filling holes (the cursor skips what was
        // already retransmitted this episode).
        recovery_send();
      }
    } else {
      dupacks_ = 0;
      cc_->on_ack(acked, sim_.now(), rtt_.srtt());
    }

    if (fin_sent_ && snd_una_ > fin_seq_) {
      if (state_ == TcpState::kFinWait) {
        state_ = peer_fin_received_ && rcv_nxt_ > peer_fin_seq_
                     ? TcpState::kDone
                     : TcpState::kFinWait2;
        if (state_ == TcpState::kDone) stats_.closed_at = sim_.now();
      } else if (state_ == TcpState::kLastAck) {
        state_ = TcpState::kDone;
        stats_.closed_at = sim_.now();
      }
    }

    if (flight() == 0) {
      cancel_rto();
    } else {
      arm_rto();  // restart on forward progress
    }
    try_send();
    // Holes may remain above the new snd_una_: restart the RACK window so
    // a real loss among them is still detected promptly.
    ++rack_gen_;
    rack_armed_ = false;
    maybe_arm_rack();
    return;
  }

  if (ext_ack == snd_una_ && flight() > 0 && !has_payload) {
    ++stats_.dupacks_received;
    // RFC 6675: with SACK, a duplicate ACK is a loss signal only when it
    // reports previously-unknown data. ACKs elicited by our own spurious
    // retransmissions carry no new SACK info and must not re-trigger
    // recovery (they otherwise feed a self-sustaining retransmit loop).
    if (cfg_.sack_enabled && !new_sack) return;
    if (in_recovery_) {
      recovery_send();
    } else if (++dupacks_ >= reordering_) {
      enter_recovery();
    } else {
      maybe_arm_rack();
    }
  }
}

void TcpConnection::arm_rto() {
  ++timer_gen_;
  timer_armed_ = true;
  sim_.schedule_in(rtt_.rto(), this, (timer_gen_ << 2) | 0);
}

void TcpConnection::cancel_rto() {
  ++timer_gen_;  // invalidates any pending event
  timer_armed_ = false;
}

void TcpConnection::maybe_arm_rack() {
  if (!cfg_.rack_enabled || rack_armed_ || in_recovery_ ||
      sacked_total_ == 0) {
    return;
  }
  // A hole is declared lost once it is older than an RTT plus a reorder
  // allowance (RACK's rule). We arm from the latest delivery signal, so the
  // window must cover a full SRTT (the natural ACK spacing at small cwnd)
  // plus the allowance — otherwise the timer beats the ACK clock and cuts
  // healthy low-rate flows forever.
  const Time srtt = rtt_.has_sample() ? rtt_.srtt() : 100 * kMicrosecond;
  const Time wnd =
      srtt + std::max(srtt / cfg_.rack_reo_wnd_den, cfg_.rack_min_wnd);
  ++rack_gen_;
  rack_armed_ = true;
  rack_snd_una_ = snd_una_;
  sim_.schedule_in(wnd, this, (rack_gen_ << 2) | 2);
}

void TcpConnection::handle_event(u64 tag) {
  const u64 kind = tag & 3;
  if (kind == 1) {
    // Delayed-ACK timer.
    if ((tag >> 2) != delack_gen_) return;  // stale
    delack_armed_ = false;
    if (unacked_segments_ > 0) ack_now();
    return;
  }
  if (kind == 2) {
    // RACK reorder window expired: a hole outlived the window with SACKed
    // data above it — that is a loss, not reordering.
    if ((tag >> 2) != rack_gen_) return;  // stale
    rack_armed_ = false;
    if (!in_recovery_ && sacked_total_ > 0 && snd_una_ == rack_snd_una_ &&
        state_ != TcpState::kDone) {
      enter_recovery();
    }
    return;
  }
  if ((tag >> 2) != timer_gen_) return;  // stale timer
  timer_armed_ = false;
  if (flight() == 0 || state_ == TcpState::kDone) return;

  ++stats_.rtos;
  rtt_.backoff();
  cc_->on_rto(flight(), sim_.now());
  exit_recovery();
  sacked_.clear();
  sacked_total_ = 0;
  retx_out_ = 0;

  if (state_ == TcpState::kSynSent) {
    send_syn();
    arm_rto();
    return;
  }
  if (state_ == TcpState::kSynRcvd && snd_una_ < data_start_) {
    send_synack();
    arm_rto();
    return;
  }

  if (fin_sent_ && fin_seq_ == snd_una_) {
    // Only the FIN is outstanding: resend it directly.
    send_fin(fin_seq_);
    ++stats_.retransmits;
    snd_nxt_ = fin_seq_ + 1;
    arm_rto();
    return;
  }

  // Go-back-N: rewind and let the collapsed window clock out the resend.
  snd_nxt_ = snd_una_;
  if (fin_sent_) {
    fin_sent_ = false;  // try_send() re-emits data and then the FIN
    if (state_ == TcpState::kFinWait) state_ = TcpState::kEstablished;
  }
  try_send();
  arm_rto();
}

// --- receiver ---------------------------------------------------------

void TcpConnection::ack_now() {
  send_pure_ack();
  unacked_segments_ = 0;
  ++delack_gen_;  // cancel any pending delayed-ACK timer
  delack_armed_ = false;
}

void TcpConnection::maybe_delay_ack() {
  if (unacked_segments_ >= cfg_.ack_every) {
    ack_now();
    return;
  }
  if (!delack_armed_) {
    ++delack_gen_;
    delack_armed_ = true;
    sim_.schedule_in(cfg_.delayed_ack_timeout, this, (delack_gen_ << 2) | 1);
  }
}

u32 TcpConnection::build_sack_blocks(SackBlock* out) const {
  // RFC 2018: the block containing the most recent arrival first.
  u32 n = 0;
  const auto recent = ooo_.find(last_ooo_start_);
  if (recent != ooo_.end()) {
    out[n++] = SackBlock{static_cast<u32>(recent->first),
                         static_cast<u32>(recent->second)};
  }
  for (auto it = ooo_.begin(); it != ooo_.end() && n < kMaxSackBlocks; ++it) {
    if (it == recent) continue;
    out[n++] = SackBlock{static_cast<u32>(it->first),
                         static_cast<u32>(it->second)};
  }
  return n;
}

void TcpConnection::on_segment(net::Packet* pkt) {
  if (!pkt->is_tcp()) {
    pkt->pool()->free(pkt);
    return;
  }
  net::TcpView tcp = pkt->tcp();
  const u8 flags = tcp.flags();
  const u32 wire_seq = tcp.seq();
  const u32 wire_ack = tcp.ack();
  const u32 payload_len = pkt->l4_payload_len();
  const ParsedOptions opts = parse_options(tcp);
  const u32 tsecr = opts.ts ? opts.ts->tsecr : 0;

  switch (state_) {
    case TcpState::kClosed:
    case TcpState::kDone:
      break;

    case TcpState::kSynSent: {
      if ((flags & net::TcpFlags::kSyn) && (flags & net::TcpFlags::kAck)) {
        const u64 ext_ack = seq_unwrap(wire_ack, snd_nxt_);
        if (ext_ack == snd_nxt_) {
          snd_una_ = ext_ack;
          rcv_nxt_ = ext_init(wire_seq) + 1;
          rcv_data_start_ = rcv_nxt_;
          if (opts.ts) ts_recent_ = opts.ts->tsval;
          state_ = TcpState::kEstablished;
          stats_.established_at = sim_.now();
          if (tsecr != 0) {
            const u32 d = now_ts() - tsecr;
            rtt_.sample(static_cast<Time>(d) * kNanosecond);
          }
          cancel_rto();
          send_pure_ack();
          try_send();
        }
      }
      break;
    }

    case TcpState::kSynRcvd: {
      if (flags & net::TcpFlags::kSyn) {
        send_synack();  // peer retransmitted its SYN: our SYN-ACK was lost
        break;
      }
      if (flags & net::TcpFlags::kAck) {
        const u64 ext_ack = seq_unwrap(wire_ack, snd_nxt_);
        if (ext_ack == snd_nxt_) {
          snd_una_ = ext_ack;
          state_ = TcpState::kEstablished;
          stats_.established_at = sim_.now();
          cancel_rto();
        }
        // The ACK may carry data (or a FIN) — process it below.
        if (state_ == TcpState::kEstablished &&
            (payload_len > 0 || (flags & net::TcpFlags::kFin))) {
          if (opts.ts) ts_recent_ = opts.ts->tsval;
          on_data(seq_unwrap(wire_seq, rcv_nxt_), payload_len,
                  (flags & net::TcpFlags::kFin) != 0);
        }
      }
      break;
    }

    default: {  // established and closing states
      if (flags & net::TcpFlags::kRst) {
        state_ = TcpState::kDone;
        stats_.closed_at = sim_.now();
        break;
      }
      if (flags & net::TcpFlags::kSyn) {
        // Duplicate SYN-ACK (our handshake ACK was lost): re-ack it.
        send_pure_ack();
        break;
      }
      const u64 ext_seq = seq_unwrap(wire_seq, rcv_nxt_);
      if (opts.ts && ext_seq <= rcv_nxt_) ts_recent_ = opts.ts->tsval;
      if (flags & net::TcpFlags::kAck) {
        on_ack_segment(seq_unwrap(wire_ack, snd_una_), payload_len > 0,
                       tsecr, opts);
      }
      if (payload_len > 0 || (flags & net::TcpFlags::kFin)) {
        on_data(ext_seq, payload_len, (flags & net::TcpFlags::kFin) != 0);
      }
      break;
    }
  }
  pkt->pool()->free(pkt);
}

void TcpConnection::on_data(u64 ext_seq, u32 payload_len, bool fin) {
  ++stats_.segments_received;
  const u64 seg_start = ext_seq;
  const u64 seg_end = ext_seq + payload_len;
  if (fin) {
    peer_fin_received_ = true;
    peer_fin_seq_ = seg_end;
  }

  if (seg_end < rcv_nxt_ ||
      (seg_end == rcv_nxt_ && !(fin && peer_fin_seq_ == rcv_nxt_))) {
    // Entirely old data (a retransmission that already arrived).
    ++stats_.dup_segments;
    ack_now();
    return;
  }

  if (seg_start > rcv_nxt_) {
    // Hole before this segment: buffer and emit a duplicate ACK (with SACK).
    ++stats_.ooo_segments;
    if (payload_len > 0) {
      // Insert [seg_start, seg_end) into the interval set, merging.
      auto it = ooo_.lower_bound(seg_start);
      u64 start = seg_start, end = seg_end;
      if (it != ooo_.begin()) {
        auto prev = std::prev(it);
        if (prev->second >= start) {
          start = prev->first;
          end = std::max(end, prev->second);
          it = ooo_.erase(prev);
        }
      }
      while (it != ooo_.end() && it->first <= end) {
        end = std::max(end, it->second);
        it = ooo_.erase(it);
      }
      ooo_[start] = end;
      last_ooo_start_ = start;
    }
    ack_now();  // immediate duplicate ACK (RFC 5681)
    return;
  }

  // In-order (possibly overlapping the already-received prefix).
  const u64 before = rcv_nxt_;
  if (seg_end > rcv_nxt_) rcv_nxt_ = seg_end;
  deliver_in_order();
  stats_.bytes_delivered += rcv_nxt_ - before;

  if (peer_fin_received_ && rcv_nxt_ == peer_fin_seq_) {
    rcv_nxt_ += 1;  // consume the FIN
    ack_now();
    maybe_passive_close();
    return;
  }
  if (!ooo_.empty()) {
    // Still holes above: ack immediately so the sender keeps SACK state.
    ack_now();
    return;
  }
  ++unacked_segments_;
  maybe_delay_ack();
}

void TcpConnection::deliver_in_order() {
  auto it = ooo_.begin();
  while (it != ooo_.end() && it->first <= rcv_nxt_) {
    if (it->second > rcv_nxt_) rcv_nxt_ = it->second;
    it = ooo_.erase(it);
  }
}

void TcpConnection::maybe_passive_close() {
  if (state_ == TcpState::kEstablished) {
    // Passive close: we received the peer's FIN; send ours.
    fin_seq_ = snd_nxt_;
    send_fin(fin_seq_);
    snd_nxt_ += 1;
    if (snd_nxt_ > highest_sent_) highest_sent_ = snd_nxt_;
    fin_sent_ = true;
    state_ = TcpState::kLastAck;
    arm_rto();
  } else if (state_ == TcpState::kFinWait2) {
    state_ = TcpState::kDone;
    stats_.closed_at = sim_.now();
  }
  // kFinWait: wait for our FIN's ack; the transition happens there.
}

}  // namespace sprayer::tcp

// TCP timestamp option (RFC 7323) encode/parse.
//
// Every segment the stack emits carries timestamps, as real Linux TCP does.
// They serve two purposes here: RTT sampling (tsecr), and — relevant to
// Sprayer — they make every segment's checksum vary with time, contributing
// to the uniformity of checksum-based spraying for ACK streams.
#pragma once

#include <algorithm>
#include <array>
#include <cstring>
#include <optional>
#include <span>

#include "common/types.hpp"
#include "net/byte_order.hpp"
#include "net/headers.hpp"

namespace sprayer::tcp {

struct TsOption {
  u32 tsval = 0;
  u32 tsecr = 0;
};

inline constexpr u32 kTsOptionLen = 12;  // NOP NOP TS(10)

[[nodiscard]] inline std::array<u8, kTsOptionLen> encode_ts(
    u32 tsval, u32 tsecr) noexcept {
  std::array<u8, kTsOptionLen> out{};
  out[0] = 1;  // NOP
  out[1] = 1;  // NOP
  out[2] = 8;  // kind: timestamps
  out[3] = 10; // length
  net::store_be32(out.data() + 4, tsval);
  net::store_be32(out.data() + 8, tsecr);
  return out;
}

/// A SACK block in wire sequence numbers: [start, end).
struct SackBlock {
  u32 start = 0;
  u32 end = 0;
};

inline constexpr u32 kMaxSackBlocks = 3;  // fits alongside timestamps

struct ParsedOptions {
  std::optional<TsOption> ts;
  std::array<SackBlock, kMaxSackBlocks> sack{};
  u32 num_sack = 0;
};

/// Scan a TCP header's options for timestamps and SACK blocks.
[[nodiscard]] inline ParsedOptions parse_options(
    const net::TcpView& tcp) noexcept {
  ParsedOptions out;
  const u32 hlen = tcp.header_len();
  const u8* p = tcp.bytes() + net::TcpView::kMinSize;
  const u8* end = tcp.bytes() + hlen;
  while (p < end) {
    const u8 kind = *p;
    if (kind == 0) break;        // end of options
    if (kind == 1) { ++p; continue; }  // NOP
    if (p + 1 >= end) break;
    const u8 len = p[1];
    if (len < 2 || p + len > end) break;  // malformed
    if (kind == 8 && len == 10) {
      out.ts = TsOption{net::load_be32(p + 2), net::load_be32(p + 6)};
    } else if (kind == 5 && len >= 10 && (len - 2) % 8 == 0) {
      const u32 blocks = std::min<u32>((len - 2) / 8, kMaxSackBlocks);
      for (u32 i = 0; i < blocks; ++i) {
        out.sack[out.num_sack++] = SackBlock{
            net::load_be32(p + 2 + 8 * i), net::load_be32(p + 6 + 8 * i)};
      }
    }
    p += len;
  }
  return out;
}

[[nodiscard]] inline std::optional<TsOption> parse_ts(
    const net::TcpView& tcp) noexcept {
  return parse_options(tcp).ts;
}

/// Encode timestamps plus up to 3 SACK blocks into one options area.
/// Layout: [NOP NOP TS(10)] [NOP NOP SACK(2+8k)] — always 4-byte aligned.
class OptionsBuilder {
 public:
  OptionsBuilder(u32 tsval, u32 tsecr) noexcept {
    const auto ts = encode_ts(tsval, tsecr);
    std::memcpy(bytes_.data(), ts.data(), ts.size());
    len_ = kTsOptionLen;
  }

  void add_sack(std::span<const SackBlock> blocks) noexcept {
    const u32 n = std::min<u32>(static_cast<u32>(blocks.size()),
                                kMaxSackBlocks);
    if (n == 0) return;
    u8* p = bytes_.data() + len_;
    p[0] = 1;  // NOP
    p[1] = 1;  // NOP
    p[2] = 5;  // kind: SACK
    p[3] = static_cast<u8>(2 + 8 * n);
    for (u32 i = 0; i < n; ++i) {
      net::store_be32(p + 4 + 8 * i, blocks[i].start);
      net::store_be32(p + 8 + 8 * i, blocks[i].end);
    }
    len_ += 4 + 8 * n;
  }

  [[nodiscard]] std::span<const u8> span() const noexcept {
    return {bytes_.data(), len_};
  }

 private:
  std::array<u8, 40> bytes_{};
  u32 len_ = 0;
};

}  // namespace sprayer::tcp

#include "tcp/cc.hpp"

#include <cmath>

namespace sprayer::tcp {

void Cubic::on_ack(u64 acked_bytes, Time now, Time srtt) {
  if (cwnd_ < ssthresh_) {
    cwnd_ += acked_bytes;  // slow start
    return;
  }
  if (srtt == 0) srtt = 100 * kMicrosecond;  // no sample yet: assume LAN
  if (epoch_start_ == 0) {
    epoch_start_ = now;
    const double cwnd_seg = static_cast<double>(cwnd_) / mss_;
    if (w_max_segments_ < cwnd_seg) w_max_segments_ = cwnd_seg;
    k_ = std::cbrt(w_max_segments_ * (1.0 - kBeta) / kC);
    w_est_start_ = cwnd_seg;
  }
  const double t = to_seconds(now - epoch_start_);
  // Cubic target one SRTT into the future (RFC 8312 §4.1).
  const double tc = t + to_seconds(srtt);
  const double w_cubic =
      kC * (tc - k_) * (tc - k_) * (tc - k_) + w_max_segments_;
  // TCP-friendly estimate (RFC 8312 §4.2): grows per-RTT like AIMD, which
  // dominates at the microsecond RTTs of this testbed.
  const double w_est =
      w_est_start_ +
      (3.0 * (1.0 - kBeta) / (1.0 + kBeta)) * (t / to_seconds(srtt));
  const double target = std::max(w_cubic, w_est);
  const double cwnd_seg = static_cast<double>(cwnd_) / mss_;
  if (target > cwnd_seg) {
    // Approach the target over the next window's worth of ACKs.
    const double increment = (target - cwnd_seg) / cwnd_seg;
    cwnd_ += std::max<u64>(1, static_cast<u64>(increment * mss_));
  }
}

void Cubic::on_loss(u64 flight, Time /*now*/) {
  const double cwnd_seg = static_cast<double>(cwnd_) / mss_;
  // Fast convergence: release bandwidth faster when the window shrank.
  if (cwnd_seg < w_max_segments_) {
    w_max_segments_ = cwnd_seg * (2.0 - kBeta) / 2.0;
  } else {
    w_max_segments_ = cwnd_seg;
  }
  epoch_start_ = 0;
  (void)flight;
  ssthresh_ = std::max<u64>(static_cast<u64>(kBeta * static_cast<double>(cwnd_)),
                            2ull * mss_);
  cwnd_ = ssthresh_;
}

void Cubic::on_rto(u64 flight, Time /*now*/) {
  const double cwnd_seg = static_cast<double>(cwnd_) / mss_;
  if (cwnd_seg < w_max_segments_) {
    w_max_segments_ = cwnd_seg * (2.0 - kBeta) / 2.0;
  } else {
    w_max_segments_ = cwnd_seg;
  }
  epoch_start_ = 0;
  (void)flight;
  ssthresh_ = std::max<u64>(static_cast<u64>(kBeta * static_cast<double>(cwnd_)),
                            2ull * mss_);
  cwnd_ = mss_;
}

std::unique_ptr<ICongestionControl> make_cc(CcKind kind, u32 mss,
                                            u32 initial_cwnd_segments) {
  switch (kind) {
    case CcKind::kNewReno:
      return std::make_unique<NewReno>(mss, initial_cwnd_segments);
    case CcKind::kCubic:
      return std::make_unique<Cubic>(mss, initial_cwnd_segments);
  }
  return nullptr;
}

}  // namespace sprayer::tcp

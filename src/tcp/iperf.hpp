// Iperf3-like multi-flow TCP throughput harness (paper §5).
//
// Builds the full testbed: client host — link — middlebox — link — server
// host (both directions), runs `num_flows` bulk TCP connections through the
// middlebox NF for a fixed duration, and reports per-flow goodput, loss
// recovery statistics, Jain's fairness index, and the middlebox-side
// counters. Used by the Figure 6(b), 7(b) and 9 benches.
#pragma once

#include <vector>

#include "core/middlebox.hpp"
#include "net/packet_pool.hpp"
#include "tcp/host.hpp"

namespace sprayer::tcp {

struct IperfScenario {
  u32 num_flows = 1;
  Time warmup = 200 * kMillisecond;   // excluded from goodput measurement
  Time duration = 1 * kSecond;        // measured interval
  Time start_spread = 1 * kMillisecond;  // connection start jitter
  TcpConfig tcp;
  u64 seed = 1;
  /// Optional explicit flow tuples (client-side view). When empty, random
  /// tuples are generated from the seed. Must have num_flows entries if set.
  std::vector<net::FiveTuple> tuples;

  core::SprayerConfig mbox;
  nic::NicConfig nic;

  double link_rate_bps = 10e9;
  Time link_delay = 500 * kNanosecond;
  u32 host_link_queue = 1024;  // qdisc depth on the end hosts (~txqueuelen 1000)
  u32 pool_packets = 1u << 16;
  u32 pool_buffer = 1600;
};

struct IperfFlowResult {
  net::FiveTuple tuple;
  u64 bytes = 0;             // acked during the measured interval
  double goodput_bps = 0.0;
  TcpStats stats;            // cumulative (includes warmup)
  TcpState final_state = TcpState::kClosed;
  double srtt_us = 0.0;
};

struct IperfResult {
  std::vector<IperfFlowResult> flows;
  double total_goodput_bps = 0.0;
  double jain = 1.0;
  core::MiddleboxReport mbox;        // counters over the measured interval
  u64 server_ooo_segments = 0;       // reordering observed at the receiver
  u64 client_unmatched = 0;
  u64 server_unmatched = 0;
};

/// Run the scenario against `nf` on the middlebox. Deterministic per seed.
[[nodiscard]] IperfResult run_iperf(core::INetworkFunction& nf,
                                    const IperfScenario& scenario);

}  // namespace sprayer::tcp

#include "tcp/iperf.hpp"

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "nic/pktgen.hpp"

namespace sprayer::tcp {

IperfResult run_iperf(core::INetworkFunction& nf,
                      const IperfScenario& sc) {
  sim::Simulator sim;
  net::PacketPool pool(sc.pool_packets, sc.pool_buffer);

  tcp::Host client(sim, pool, "client");
  tcp::Host server(sim, pool, "server");
  core::SimMiddlebox mbox(sim, sc.mbox, nf, sc.nic);

  sim::LinkConfig to_mbox0;
  to_mbox0.rate_bps = sc.link_rate_bps;
  to_mbox0.propagation_delay = sc.link_delay;
  to_mbox0.queue_packets = sc.host_link_queue;
  to_mbox0.egress_port_label = 0;  // arrives on middlebox port 0

  sim::LinkConfig to_mbox1 = to_mbox0;
  to_mbox1.egress_port_label = 1;  // arrives on middlebox port 1

  sim::LinkConfig to_host = to_mbox0;  // label ignored by hosts

  sim::Link l_client_mbox(sim, to_mbox0, mbox.ingress(), "client->mbox");
  sim::Link l_mbox_server(sim, to_host, server, "mbox->server");
  sim::Link l_server_mbox(sim, to_mbox1, mbox.ingress(), "server->mbox");
  sim::Link l_mbox_client(sim, to_host, client, "mbox->client");

  client.attach_out(l_client_mbox);
  server.attach_out(l_server_mbox);
  mbox.attach_tx_link(0, l_mbox_client);  // egress port 0 → client side
  mbox.attach_tx_link(1, l_mbox_server);  // egress port 1 → server side

  server.listen_all(sc.tcp);

  // "Sources and destinations change randomly at every execution" (§5).
  const auto tuples = sc.tuples.empty()
                          ? nic::random_tcp_flows(sc.num_flows, sc.seed)
                          : sc.tuples;
  SPRAYER_CHECK_MSG(tuples.size() == sc.num_flows,
                    "tuple override must match num_flows");
  Rng rng(sc.seed ^ 0x1be4f);
  std::vector<TcpConnection*> flows;
  flows.reserve(sc.num_flows);
  for (u32 i = 0; i < sc.num_flows; ++i) {
    const Time start =
        sc.start_spread > 0 ? rng.uniform(sc.start_spread) : 0;
    flows.push_back(&client.open(tuples[i], sc.tcp, start,
                                 sc.seed * 7919 + i));
  }

  // Warmup, then snapshot and measure.
  sim.run_until(sc.warmup);
  std::vector<u64> base_bytes;
  base_bytes.reserve(flows.size());
  for (const auto* f : flows) base_bytes.push_back(f->bytes_acked());
  mbox.reset_stats();

  sim.run_until(sc.warmup + sc.duration);

  IperfResult result;
  const double secs = to_seconds(sc.duration);
  std::vector<double> goodputs;
  goodputs.reserve(flows.size());
  for (u32 i = 0; i < flows.size(); ++i) {
    IperfFlowResult fr;
    fr.tuple = tuples[i];
    fr.bytes = flows[i]->bytes_acked() - base_bytes[i];
    fr.goodput_bps = static_cast<double>(fr.bytes) * 8.0 / secs;
    fr.stats = flows[i]->stats();
    fr.final_state = flows[i]->state();
    fr.srtt_us = to_micros(flows[i]->rtt().srtt());
    result.total_goodput_bps += fr.goodput_bps;
    goodputs.push_back(fr.goodput_bps);
    result.flows.push_back(fr);
  }
  result.jain = jain_fairness(goodputs);
  result.mbox = mbox.report();
  for (const auto& c : server.connections()) {
    result.server_ooo_segments += c->stats().ooo_segments;
  }
  result.client_unmatched = client.unmatched_packets();
  result.server_unmatched = server.unmatched_packets();
  return result;
}

}  // namespace sprayer::tcp

#include "tcp/host.hpp"

#include "tcp/options.hpp"

namespace sprayer::tcp {

TcpConnection& Host::open(const net::FiveTuple& tuple, const TcpConfig& cfg,
                          Time at, u64 seed) {
  auto conn = std::make_unique<TcpConnection>(sim_, pool_, *this, tuple, cfg,
                                              /*active=*/true, seed);
  TcpConnection* raw = conn.get();
  conns_.push_back(std::move(conn));
  by_tuple_.emplace(tuple, raw);
  pending_opens_.push_back(static_cast<u32>(conns_.size() - 1));
  sim_.schedule_at(at, this, pending_opens_.size() - 1);
  return *raw;
}

void Host::handle_event(u64 tag) {
  SPRAYER_CHECK(tag < pending_opens_.size());
  conns_[pending_opens_[tag]]->open();
}

void Host::output(net::Packet* pkt) {
  SPRAYER_CHECK_MSG(out_ != nullptr, "host has no attached link");
  pkt->ts_gen = sim_.now();
  out_->send(pkt);
}

void Host::receive(net::Packet* pkt) {
  if (!pkt->parse() || !pkt->is_tcp()) {
    ++unmatched_;
    pkt->pool()->free(pkt);
    return;
  }
  // The connection tuple from our perspective is the reverse of the
  // incoming packet's tuple.
  const net::FiveTuple local_tuple = pkt->five_tuple().reversed();
  const auto it = by_tuple_.find(local_tuple);
  if (it != by_tuple_.end()) {
    it->second->on_segment(pkt);
    return;
  }

  net::TcpView tcp = pkt->tcp();
  const bool bare_syn = (tcp.flags() & net::TcpFlags::kSyn) != 0 &&
                        (tcp.flags() & net::TcpFlags::kAck) == 0;
  if (listening_ && bare_syn) {
    auto conn = std::make_unique<TcpConnection>(
        sim_, pool_, *this, local_tuple, server_cfg_, /*active=*/false,
        seed_counter_++);
    TcpConnection* raw = conn.get();
    conns_.push_back(std::move(conn));
    by_tuple_.emplace(local_tuple, raw);
    const auto ts = parse_ts(tcp);
    raw->accept_syn(tcp.seq(), ts ? ts->tsval : 0);
    pkt->pool()->free(pkt);
    return;
  }

  ++unmatched_;
  pkt->pool()->free(pkt);
}

}  // namespace sprayer::tcp

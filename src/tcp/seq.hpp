// 32-bit TCP sequence-number arithmetic (RFC 793 comparisons) and the
// wrap-free 64-bit stream offsets the stack uses internally.
#pragma once

#include "common/types.hpp"

namespace sprayer::tcp {

[[nodiscard]] constexpr bool seq_lt(u32 a, u32 b) noexcept {
  return static_cast<i32>(a - b) < 0;
}
[[nodiscard]] constexpr bool seq_le(u32 a, u32 b) noexcept {
  return static_cast<i32>(a - b) <= 0;
}
[[nodiscard]] constexpr bool seq_gt(u32 a, u32 b) noexcept {
  return static_cast<i32>(a - b) > 0;
}
[[nodiscard]] constexpr bool seq_ge(u32 a, u32 b) noexcept {
  return static_cast<i32>(a - b) >= 0;
}

/// Unwrap a 32-bit wire sequence number into the 64-bit stream offset
/// closest to `reference` (a recent 64-bit offset, e.g. rcv_nxt).
[[nodiscard]] constexpr u64 seq_unwrap(u32 wire, u64 reference) noexcept {
  const u32 ref32 = static_cast<u32>(reference);
  const i64 delta = static_cast<i32>(wire - ref32);
  return reference + static_cast<u64>(delta);
}

/// Map a 64-bit stream offset to its 32-bit wire value given the ISS.
[[nodiscard]] constexpr u32 seq_wrap(u64 offset, u32 iss) noexcept {
  return static_cast<u32>(offset) + iss;
}

}  // namespace sprayer::tcp

#include "trace/replay.hpp"

#include <cstring>

namespace sprayer::trace {

void TraceReplayer::handle_event(u64 /*tag*/) {
  if (!has_pending_) return;

  const FlowRecord& flow = gen_.flows()[pending_.flow_id];
  net::TcpSegmentSpec spec;
  spec.tuple = flow.tuple;
  if (pending_.first) {
    spec.flags = net::TcpFlags::kSyn;
  } else if (pending_.last) {
    spec.flags = net::TcpFlags::kFin | net::TcpFlags::kAck;
  } else {
    spec.flags = net::TcpFlags::kAck;
  }
  spec.seq = static_cast<u32>(rng_.next());
  // Cap the payload to one MSS worth of frame.
  spec.payload_len = std::min<u32>(pending_.bytes, 1460);
  u8 head[8];
  const u64 r = rng_.next();
  std::memcpy(head, &r, sizeof(head));
  spec.payload = std::span<const u8>{
      head, std::min<std::size_t>(sizeof(head), spec.payload_len)};

  net::Packet* pkt = net::build_tcp_raw(pool_, spec);
  if (pkt != nullptr) {
    pkt->ts_gen = sim_.now();
    pkt->user_tag = pending_.flow_id;
    out_.send(pkt);
    ++sent_;
  }

  if (gen_.next_packet(pending_)) {
    sim_.schedule_at(std::max(pending_.time, sim_.now()), this);
  } else {
    has_pending_ = false;
  }
}

}  // namespace sprayer::trace

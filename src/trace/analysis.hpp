// Trace analyses reproducing the paper's motivation figures:
//   Figure 1 — CDF of TCP flow sizes, and distribution of bytes across
//              flow sizes;
//   Figure 2 — CDF of the number of concurrent flows per 150 µs window,
//              for all flows and for flows > 10 MB.
#pragma once

#include <span>
#include <vector>

#include "common/cdf.hpp"
#include "common/units.hpp"
#include "trace/workload.hpp"

namespace sprayer::trace {

struct FlowSizeAnalysis {
  EmpiricalCdf flow_sizes;   // CDF over flows
  WeightedCdf bytes_by_size; // fraction of bytes from flows of size <= x
  u64 total_flows = 0;
  double total_bytes = 0.0;
  /// Fraction of bytes carried by flows strictly larger than `threshold`.
  [[nodiscard]] double byte_share_above(double threshold) const {
    return 1.0 - bytes_by_size.at(threshold);
  }
};

[[nodiscard]] FlowSizeAnalysis analyze_flow_sizes(
    std::span<const FlowRecord> flows);

struct ConcurrencyAnalysis {
  EmpiricalCdf all_flows;    // distinct flows per window
  EmpiricalCdf large_flows;  // distinct >threshold flows per window
  u64 windows = 0;
};

/// Stream a workload and count distinct flows per fixed window. `generator`
/// is consumed. Flows whose total size exceeds `large_threshold_bytes`
/// contribute to the large-flow CDF.
[[nodiscard]] ConcurrencyAnalysis analyze_concurrency(
    WorkloadGenerator& generator, Time window = 150 * kMicrosecond,
    u64 large_threshold_bytes = 10'000'000);

}  // namespace sprayer::trace

#include "trace/workload.hpp"

namespace sprayer::trace {

WorkloadGenerator::WorkloadGenerator(WorkloadConfig cfg)
    : cfg_(cfg), model_(cfg.model), rng_(cfg.seed) {
  SPRAYER_CHECK(cfg.utilization > 0 && cfg.utilization <= 1.0);
  // Flow arrival rate so that lambda * E[size] * 8 = utilization * capacity.
  const double lambda =
      cfg.utilization * cfg.link_rate_bps / (8.0 * model_.mean_bytes());
  mean_interarrival_ = static_cast<Time>(1e12 / lambda);
  next_arrival_ = static_cast<Time>(
      rng_.exponential(static_cast<double>(mean_interarrival_)));
}

void WorkloadGenerator::start_new_flow() {
  const FlowSample s = model_.sample(rng_);
  FlowRecord rec;
  rec.id = static_cast<u32>(flows_.size());
  rec.start = next_arrival_;
  rec.bytes = s.bytes;
  rec.rate_bps = s.rate_bps;
  rec.tuple.src_ip = net::Ipv4Addr{static_cast<u32>(rng_.next())};
  rec.tuple.dst_ip = net::Ipv4Addr{static_cast<u32>(rng_.next())};
  rec.tuple.src_port = static_cast<u16>(rng_.uniform_range(1024, 65535));
  rec.tuple.dst_port = static_cast<u16>(rng_.uniform_range(1, 65535));
  rec.tuple.protocol = net::kProtoTcp;
  flows_.push_back(rec);

  ActiveFlow af;
  af.next_time = rec.start;
  af.id = rec.id;
  af.remaining = rec.bytes;
  // Inter-packet gap at the flow's application rate.
  af.packet_gap = static_cast<Time>(
      static_cast<double>(cfg_.mtu_payload) * 8.0 * 1e12 / rec.rate_bps);
  af.first_pending = true;
  active_.push(af);

  next_arrival_ += static_cast<Time>(
      rng_.exponential(static_cast<double>(mean_interarrival_)));
}

bool WorkloadGenerator::next_packet(PacketRecord& out) {
  // Admit every flow that arrives before the earliest queued packet.
  while (next_arrival_ <= cfg_.duration &&
         (active_.empty() || next_arrival_ <= active_.top().next_time)) {
    start_new_flow();
  }
  if (active_.empty()) return false;

  ActiveFlow af = active_.top();
  active_.pop();

  const u32 bytes = static_cast<u32>(
      std::min<u64>(af.remaining, cfg_.mtu_payload));
  out.time = af.next_time;
  out.flow_id = af.id;
  out.bytes = bytes;
  out.first = af.first_pending;
  af.remaining -= bytes;
  out.last = (af.remaining == 0);
  af.first_pending = false;

  if (af.remaining > 0) {
    af.next_time += af.packet_gap;
    active_.push(af);
  }
  return true;
}

}  // namespace sprayer::trace

#include "trace/pcap.hpp"

#include <cstdio>
#include <cstring>

namespace sprayer::trace {

namespace {

constexpr u32 kMagic = 0xa1b2c3d4;  // microsecond timestamps, native order
constexpr u32 kLinktypeEthernet = 1;
constexpr u32 kSnaplen = 65535;

struct GlobalHeader {
  u32 magic;
  u16 version_major;
  u16 version_minor;
  i32 thiszone;
  u32 sigfigs;
  u32 snaplen;
  u32 network;
};
static_assert(sizeof(GlobalHeader) == 24);

struct RecordHeader {
  u32 ts_sec;
  u32 ts_usec;
  u32 incl_len;
  u32 orig_len;
};
static_assert(sizeof(RecordHeader) == 16);

}  // namespace

Result<PcapWriter> PcapWriter::open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return make_error(Error::Code::kInvalidArgument,
                      "cannot open pcap file for writing: " + path);
  }
  const GlobalHeader header{kMagic, 2, 4, 0, 0, kSnaplen, kLinktypeEthernet};
  if (std::fwrite(&header, sizeof(header), 1, file) != 1) {
    std::fclose(file);
    return make_error(Error::Code::kInvalidArgument,
                      "cannot write pcap header to " + path);
  }
  return PcapWriter(file);
}

PcapWriter::~PcapWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status PcapWriter::write(Time timestamp, const u8* data, u32 len) {
  SPRAYER_CHECK_MSG(file_ != nullptr, "writer was moved from");
  const u64 usec_total = timestamp / kMicrosecond;
  const RecordHeader rec{static_cast<u32>(usec_total / 1'000'000),
                         static_cast<u32>(usec_total % 1'000'000), len, len};
  if (std::fwrite(&rec, sizeof(rec), 1, file_) != 1 ||
      std::fwrite(data, 1, len, file_) != len) {
    return make_error(Error::Code::kExhausted, "pcap write failed");
  }
  ++packets_;
  return {};
}

Result<std::vector<PcapRecord>> read_pcap(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return make_error(Error::Code::kNotFound,
                      "cannot open pcap file: " + path);
  }
  GlobalHeader header;
  if (std::fread(&header, sizeof(header), 1, file) != 1 ||
      header.magic != kMagic) {
    std::fclose(file);
    return make_error(Error::Code::kUnsupported,
                      "not a microsecond little-endian pcap file: " + path);
  }

  std::vector<PcapRecord> records;
  for (;;) {
    RecordHeader rec;
    if (std::fread(&rec, sizeof(rec), 1, file) != 1) break;  // EOF
    if (rec.incl_len > header.snaplen) {
      std::fclose(file);
      return make_error(Error::Code::kTruncated,
                        "corrupt pcap record in " + path);
    }
    PcapRecord out;
    out.timestamp = (static_cast<Time>(rec.ts_sec) * 1'000'000 +
                     rec.ts_usec) *
                    kMicrosecond;
    out.bytes.resize(rec.incl_len);
    if (std::fread(out.bytes.data(), 1, rec.incl_len, file) !=
        rec.incl_len) {
      std::fclose(file);
      return make_error(Error::Code::kTruncated,
                        "truncated pcap record in " + path);
    }
    records.push_back(std::move(out));
  }
  std::fclose(file);
  return records;
}

}  // namespace sprayer::trace

// Heavy-tailed flow model replacing the MAWI samplepoint-F trace (paper §2).
//
// Flow sizes are an elephants-and-mice mixture: a log-normal body (mice) and
// a Pareto tail (elephants). The default parameters are calibrated so that
// flows larger than 10 MB carry over 75 % of the bytes — the distributional
// fact Figure 1 establishes — and per-flow rates are chosen so that the
// 150 µs-window concurrency of Figure 2 lands near the paper's medians
// (≈4 flows overall, ≈1 among >10 MB flows) on a highly utilized 1 Gbps
// link.
#pragma once

#include "common/rng.hpp"
#include "common/types.hpp"

namespace sprayer::trace {

struct FlowModelConfig {
  /// Fraction of flows drawn from the elephant (Pareto) component.
  double elephant_fraction = 0.01;
  /// Mice: log-normal parameters of flow size in bytes.
  double mice_log_mean = 9.5;   // median ≈ 13 KB
  double mice_log_sigma = 2.0;
  /// Elephants: Pareto scale (bytes) and shape.
  double elephant_scale = 10e6;  // every elephant is ≥ 10 MB
  double elephant_shape = 1.5;   // mean 30 MB
  double max_flow_bytes = 20e9;  // truncate the tail (48 h trace ≈ finite)

  /// Per-flow sending rates (bits/s): elephants are capacity-limited bulk
  /// transfers; mice are short request/response exchanges.
  double elephant_rate_bps = 200e6;
  double mice_rate_bps = 20e6;
};

struct FlowSample {
  u64 bytes = 0;
  double rate_bps = 0.0;
  bool elephant = false;
};

class FlowSizeModel {
 public:
  explicit FlowSizeModel(FlowModelConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] FlowSample sample(Rng& rng) const {
    FlowSample s;
    s.elephant = rng.chance(cfg_.elephant_fraction);
    double bytes;
    if (s.elephant) {
      bytes = rng.pareto(cfg_.elephant_scale, cfg_.elephant_shape);
      s.rate_bps = cfg_.elephant_rate_bps;
    } else {
      bytes = rng.lognormal(cfg_.mice_log_mean, cfg_.mice_log_sigma);
      s.rate_bps = cfg_.mice_rate_bps;
    }
    if (bytes > cfg_.max_flow_bytes) bytes = cfg_.max_flow_bytes;
    if (bytes < 64.0) bytes = 64.0;
    s.bytes = static_cast<u64>(bytes);
    return s;
  }

  /// Mean flow size in bytes (analytic, for arrival-rate calibration).
  [[nodiscard]] double mean_bytes() const {
    const double mice_mean =
        std::exp(cfg_.mice_log_mean +
                 cfg_.mice_log_sigma * cfg_.mice_log_sigma / 2.0);
    const double elephant_mean = cfg_.elephant_shape > 1.0
        ? cfg_.elephant_scale * cfg_.elephant_shape /
              (cfg_.elephant_shape - 1.0)
        : cfg_.max_flow_bytes;
    return cfg_.elephant_fraction * elephant_mean +
           (1.0 - cfg_.elephant_fraction) * mice_mean;
  }

  [[nodiscard]] const FlowModelConfig& config() const noexcept { return cfg_; }

 private:
  FlowModelConfig cfg_;
};

}  // namespace sprayer::trace

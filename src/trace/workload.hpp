// Packet-level workload generator over the flow model.
//
// Flows arrive as a Poisson process with rate calibrated to hit a target
// link utilization; each flow emits MTU-sized packets at its rate until its
// size is exhausted. Packets are produced strictly in timestamp order via a
// heap of active flows, so analyses (and the replayer) can stream without
// materializing the whole trace.
#pragma once

#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "net/five_tuple.hpp"
#include "trace/flow_model.hpp"

namespace sprayer::trace {

struct WorkloadConfig {
  FlowModelConfig model;
  double link_rate_bps = 1e9;  // the MAWI link is 1 Gbps
  double utilization = 0.8;    // "highly-utilized"
  Time duration = 10 * kSecond;
  u32 mtu_payload = 1500;      // bytes of flow data per full packet
  u64 seed = 1;
};

struct FlowRecord {
  u32 id = 0;
  Time start = 0;
  u64 bytes = 0;
  double rate_bps = 0.0;
  net::FiveTuple tuple;
};

struct PacketRecord {
  Time time = 0;
  u32 flow_id = 0;
  u32 bytes = 0;
  bool first = false;  // flow's first packet (SYN position)
  bool last = false;   // flow's last packet (FIN position)
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadConfig cfg);

  /// Produce the next packet in time order; false when the trace ended.
  bool next_packet(PacketRecord& out);

  /// Flows generated so far (fully known once their first packet appears).
  [[nodiscard]] const std::vector<FlowRecord>& flows() const noexcept {
    return flows_;
  }

  /// Mean flow inter-arrival time from the calibration.
  [[nodiscard]] Time mean_interarrival() const noexcept {
    return mean_interarrival_;
  }

  [[nodiscard]] const WorkloadConfig& config() const noexcept { return cfg_; }

 private:
  struct ActiveFlow {
    Time next_time;
    u32 id;
    u64 remaining;
    Time packet_gap;   // time between this flow's packets
    bool first_pending;

    bool operator>(const ActiveFlow& o) const noexcept {
      return next_time != o.next_time ? next_time > o.next_time : id > o.id;
    }
  };

  void start_new_flow();

  WorkloadConfig cfg_;
  FlowSizeModel model_;
  Rng rng_;
  Time mean_interarrival_;
  Time next_arrival_ = 0;
  std::vector<FlowRecord> flows_;
  std::priority_queue<ActiveFlow, std::vector<ActiveFlow>, std::greater<>>
      active_;
};

}  // namespace sprayer::trace

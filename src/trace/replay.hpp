// Replay a synthetic workload as real packets into a simulated link — used
// to drive NFs with Internet-like traffic (Table 1 bench, examples).
// The first packet of each flow is emitted as a SYN and the last as a FIN,
// so stateful NFs see proper connection lifecycles.
#pragma once

#include "common/rng.hpp"
#include "net/packet_builder.hpp"
#include "net/packet_pool.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"
#include "trace/workload.hpp"

namespace sprayer::trace {

class TraceReplayer final : public sim::IEventTarget {
 public:
  TraceReplayer(sim::Simulator& sim, net::PacketPool& pool, sim::Link& out,
                WorkloadConfig cfg)
      : sim_(sim), pool_(pool), out_(out), gen_(cfg),
        rng_(cfg.seed ^ 0x4e91a7ULL) {}

  /// Schedule the first packet.
  void start() {
    if (gen_.next_packet(pending_)) {
      has_pending_ = true;
      sim_.schedule_at(pending_.time, this);
    }
  }

  void handle_event(u64 /*tag*/) override;

  [[nodiscard]] u64 sent() const noexcept { return sent_; }
  [[nodiscard]] const WorkloadGenerator& generator() const noexcept {
    return gen_;
  }

 private:
  sim::Simulator& sim_;
  net::PacketPool& pool_;
  sim::Link& out_;
  WorkloadGenerator gen_;
  Rng rng_;
  PacketRecord pending_{};
  bool has_pending_ = false;
  u64 sent_ = 0;
};

}  // namespace sprayer::trace

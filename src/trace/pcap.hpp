// Classic libpcap file I/O (the 0xa1b2c3d4 microsecond format) so synthetic
// workloads and middlebox traffic can be exported to — and imported from —
// standard tools (tcpdump, Wireshark, real MAWI excerpts).
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "net/packet_pool.hpp"

namespace sprayer::trace {

/// Sequentially writes packets to a pcap file (linktype Ethernet).
class PcapWriter {
 public:
  /// Opens (truncates) the file and writes the global header.
  static Result<PcapWriter> open(const std::string& path);

  PcapWriter(PcapWriter&& o) noexcept : file_(o.file_) { o.file_ = nullptr; }
  PcapWriter& operator=(PcapWriter&&) = delete;
  PcapWriter(const PcapWriter&) = delete;
  ~PcapWriter();

  /// Append one frame with the given timestamp.
  Status write(Time timestamp, const u8* data, u32 len);
  Status write(Time timestamp, net::Packet& pkt) {
    return write(timestamp, pkt.data(), pkt.len());
  }

  [[nodiscard]] u64 packets_written() const noexcept { return packets_; }

 private:
  explicit PcapWriter(std::FILE* file) : file_(file) {}

  std::FILE* file_;
  u64 packets_ = 0;
};

struct PcapRecord {
  Time timestamp = 0;
  std::vector<u8> bytes;
};

/// Reads a whole pcap file into memory (traces here are modest).
[[nodiscard]] Result<std::vector<PcapRecord>> read_pcap(
    const std::string& path);

}  // namespace sprayer::trace

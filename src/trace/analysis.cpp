#include "trace/analysis.hpp"

#include <algorithm>

namespace sprayer::trace {

FlowSizeAnalysis analyze_flow_sizes(std::span<const FlowRecord> flows) {
  FlowSizeAnalysis a;
  a.total_flows = flows.size();
  for (const auto& f : flows) {
    const auto bytes = static_cast<double>(f.bytes);
    a.flow_sizes.add(bytes);
    a.bytes_by_size.add(bytes, bytes);
    a.total_bytes += bytes;
  }
  a.flow_sizes.finalize();
  a.bytes_by_size.finalize();
  return a;
}

ConcurrencyAnalysis analyze_concurrency(WorkloadGenerator& generator,
                                        Time window,
                                        u64 large_threshold_bytes) {
  ConcurrencyAnalysis out;
  PacketRecord pkt;
  Time window_end = window;
  std::vector<u32> seen;        // flow ids observed in this window
  std::vector<u32> seen_large;

  auto flush_window = [&]() {
    auto distinct = [](std::vector<u32>& v) {
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
      return static_cast<double>(v.size());
    };
    out.all_flows.add(distinct(seen));
    out.large_flows.add(distinct(seen_large));
    ++out.windows;
    seen.clear();
    seen_large.clear();
  };

  while (generator.next_packet(pkt)) {
    while (pkt.time >= window_end) {
      flush_window();
      window_end += window;
    }
    seen.push_back(pkt.flow_id);
    if (generator.flows()[pkt.flow_id].bytes > large_threshold_bytes) {
      seen_large.push_back(pkt.flow_id);
    }
  }
  flush_window();

  out.all_flows.finalize();
  out.large_flows.finalize();
  return out;
}

}  // namespace sprayer::trace

#!/usr/bin/env python3
"""Validate "sprayer.telemetry.v1" snapshot files (telemetry/json_exporter).

Usage: check_telemetry_schema.py FILE [FILE...]

Exits non-zero (failing the CI job) if any file is malformed: wrong schema
tag, missing sections, per-shard vectors that don't match num_shards, or
counter/gauge totals that don't equal their per-shard fold.
"""
import json
import sys

SCHEMA = "sprayer.telemetry.v1"
HIST_FIELDS = ("count", "min", "max", "mean", "p50", "p90", "p99", "p999")
REORDER_FIELDS = (
    "flows_tracked", "packets_stamped", "packets_observed", "ooo_packets",
    "ooo_fraction", "max_distance", "distance_p50", "distance_p99",
)


class SchemaError(Exception):
    pass


def require(cond, msg):
    if not cond:
        raise SchemaError(msg)


def check_scalar(name, entry, num_shards, fold):
    require(isinstance(entry, dict), f"{name}: entry must be an object")
    require(isinstance(entry.get("total"), int) and entry["total"] >= 0,
            f"{name}: total must be a non-negative integer")
    per_shard = entry.get("per_shard")
    if per_shard is None:  # fn-gauges are collector-evaluated, no shards
        require(entry.get("kind") == "fn",
                f"{name}: only fn-gauges may omit per_shard")
        return
    require(isinstance(per_shard, list) and len(per_shard) == num_shards,
            f"{name}: per_shard must have num_shards={num_shards} entries")
    require(all(isinstance(v, int) and v >= 0 for v in per_shard),
            f"{name}: per_shard entries must be non-negative integers")
    require(fold(per_shard) == entry["total"],
            f"{name}: total {entry['total']} != per-shard fold")


def check_file(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    require(doc.get("schema") == SCHEMA,
            f"schema must be {SCHEMA!r}, got {doc.get('schema')!r}")
    for key in ("epoch", "taken_at_ps", "num_shards"):
        require(isinstance(doc.get(key), int) and doc[key] >= 0,
                f"{key} must be a non-negative integer")
    require(isinstance(doc.get("consistent"), bool),
            "consistent must be a boolean")
    num_shards = doc["num_shards"]

    # Optional (older artifacts predate it): seqlock shards that exhausted
    # their retries in this snapshot. Must agree with the consistent flag.
    if "inconsistent_shards" in doc:
        bad = doc["inconsistent_shards"]
        require(isinstance(bad, int) and 0 <= bad <= num_shards,
                "inconsistent_shards must be an integer in [0, num_shards]")
        require((bad == 0) == doc["consistent"],
                "consistent flag disagrees with inconsistent_shards")

    counters = doc.get("counters")
    require(isinstance(counters, dict), "counters section missing")
    for name, entry in counters.items():
        check_scalar(name, entry, num_shards, sum)

    gauges = doc.get("gauges")
    require(isinstance(gauges, dict), "gauges section missing")
    for name, entry in gauges.items():
        kind = entry.get("kind") if isinstance(entry, dict) else None
        require(kind in ("gauge", "max", "fn"),
                f"{name}: gauge kind must be gauge/max/fn, got {kind!r}")
        fold = max if kind == "max" else sum
        check_scalar(name, entry, num_shards,
                     lambda shards, fold=fold: fold(shards) if shards else 0)

    hists = doc.get("histograms")
    require(isinstance(hists, dict), "histograms section missing")
    for name, entry in hists.items():
        require(isinstance(entry, dict), f"{name}: entry must be an object")
        for field in HIST_FIELDS:
            require(isinstance(entry.get(field), (int, float)),
                    f"{name}: missing histogram field {field!r}")
        require(entry["count"] == 0 or entry["min"] <= entry["max"],
                f"{name}: min > max in a non-empty histogram")

    if "reorder" in doc:
        reorder = doc["reorder"]
        for field in REORDER_FIELDS:
            require(isinstance(reorder.get(field), (int, float)),
                    f"reorder: missing field {field!r}")
        require(reorder["packets_observed"] >= reorder["ooo_packets"],
                "reorder: ooo_packets exceeds packets_observed")
        require(0.0 <= reorder["ooo_fraction"] <= 1.0,
                "reorder: ooo_fraction out of [0, 1]")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = 0
    for path in argv[1:]:
        try:
            check_file(path)
            print(f"{path}: OK")
        except (SchemaError, json.JSONDecodeError, OSError) as err:
            print(f"{path}: FAIL: {err}", file=sys.stderr)
            failed = 1
    return failed


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Validate churn_drill bench output (JSONL, one record per workload).

Usage: check_churn_schema.py FILE [FILE...]

Each non-comment line must be a churn_drill record. Beyond shape, the
checker enforces the lifecycle invariants that hold regardless of host
speed or drill scale (the full-scale >= 1M-flow acceptance is recorded in
BENCH_churn.json; CI runs the drill small, and the same invariants must
hold there):

  * nothing leaks: every opened connection/session is eventually closed or
    expired (leaked == 0), and at quiescence no entry is left in any
    segment of any shard (stranded == 0);
  * the NAT port pool is conserved: every reaped session released its port
    (ports_leaked == 0) — an aging path that drops an entry without
    releasing its port would strand the pool;
  * the redirect mesh is lossless for flow events (transfer_drops == 0 on
    the monitor record, which carries the mesh counters);
  * the sweep is bounded: the largest per-tick group scan never exceeds
    the housekeeping budget (max(64, total_groups/8) at the deepest
    growth), modulo the log-histogram shard-merge quantization (~1.6%)
    — a full-table scan would blow this by 8x;
  * the monitor drill reached its live target THROUGH segmented growth
    (peak_live >= live_target with table_full == 0: the base table is
    provisioned far below the target, so meeting it without refusals
    means online resize absorbed the population).

Exits non-zero on the first malformed file, failing the CI job. Lines
whose object carries a "comment" key are baseline annotations and only
need that key.
"""
import json
import sys

NUMBER = (int, float)
COMMON_FIELDS = {
    "bench": str,
    "workload": str,
    "cores": int,
    "stranded": int,
    "sweep_groups_max": int,
    "sweep_budget": int,
    "elapsed_s": NUMBER,
}
MONITOR_FIELDS = {
    "live_target": int,
    "peak_live": int,
    "opens": int,
    "closes": int,
    "data_packets": int,
    "opened": int,
    "closed": int,
    "expired": int,
    "table_full": int,
    "leaked": int,
    "fin_retransmits": int,
    "segments_max": int,
    "conn_local": int,
    "conn_transferred": int,
    "conn_foreign": int,
    "transfer_drops": int,
    "rx_ring_drops": int,
}
NAT_FIELDS = {
    "sessions_target": int,
    "opened": int,
    "closed": int,
    "expired": int,
    "port_exhausted": int,
    "table_full": int,
    "ports_claimed_peak": int,
    "ports_leaked": int,
}
WORKLOADS = ("monitor", "nat")


class SchemaError(Exception):
    pass


def require(cond, msg):
    if not cond:
        raise SchemaError(msg)


def check_fields(rec, fields, where):
    for field, ftype in fields.items():
        require(isinstance(rec.get(field), ftype),
                f"{where}: field {field!r} missing or not {ftype}")


def check_sweep_bounded(rec, where):
    budget = rec["sweep_budget"]
    require(budget >= 64, f"{where}: sweep_budget below the 64-group floor")
    # The merged max is reconstructed from a log-bucket upper edge; allow
    # that quantization over the true budget, nothing more.
    slack = budget + budget // 64 + 8
    require(rec["sweep_groups_max"] <= slack,
            f"{where}: sweep scanned {rec['sweep_groups_max']} groups in "
            f"one tick, budget {budget} (+quantization {slack}) — the "
            f"sweep is not bounded")


def check_monitor(rec, where):
    check_fields(rec, MONITOR_FIELDS, where)
    require(rec["live_target"] >= 1, f"{where}: live_target must be positive")
    require(rec["peak_live"] >= rec["live_target"],
            f"{where}: drill never reached its live target "
            f"(peak {rec['peak_live']} < target {rec['live_target']})")
    require(rec["table_full"] == 0,
            f"{where}: {rec['table_full']} SYNs refused — segmented growth "
            f"failed to absorb the population")
    require(rec["leaked"] == 0,
            f"{where}: {rec['leaked']} connections leaked "
            f"(opened != closed + expired)")
    require(rec["stranded"] == 0,
            f"{where}: {rec['stranded']} entries stranded in the tables at "
            f"quiescence")
    require(rec["transfer_drops"] == 0,
            f"{where}: the redirect mesh dropped "
            f"{rec['transfer_drops']} flow events")
    require(rec["opened"] == rec["closed"] + rec["expired"]
            or rec["opened"] == rec["closed"],
            f"{where}: open/close accounting broken "
            f"(opened {rec['opened']}, closed {rec['closed']}, "
            f"expired {rec['expired']})")
    require(rec["segments_max"] >= 1, f"{where}: segments_max must be >= 1")
    check_sweep_bounded(rec, where)


def check_nat(rec, where):
    check_fields(rec, NAT_FIELDS, where)
    require(rec["ports_leaked"] == 0,
            f"{where}: {rec['ports_leaked']} ports still claimed at "
            f"quiescence — expiry lost them")
    require(rec["stranded"] == 0,
            f"{where}: {rec['stranded']} session entries stranded")
    require(rec["opened"] == rec["closed"],
            f"{where}: {rec['opened']} sessions opened but only "
            f"{rec['closed']} closed")
    require(rec["expired"] > 0 or rec["opened"] == 0,
            f"{where}: sessions were opened but none were reclaimed by "
            f"idle aging")
    check_sweep_bounded(rec, where)


def check_record(rec, where):
    check_fields(rec, COMMON_FIELDS, where)
    require(rec["bench"] == "churn_drill",
            f"{where}: bench must be 'churn_drill'")
    require(rec["workload"] in WORKLOADS,
            f"{where}: workload must be one of {WORKLOADS}")
    require(rec["cores"] >= 1, f"{where}: cores must be positive")
    require(rec["elapsed_s"] > 0, f"{where}: elapsed_s must be positive")
    if rec["workload"] == "monitor":
        check_monitor(rec, where)
    else:
        check_nat(rec, where)
    return rec["workload"]


def check_file(path):
    seen = set()
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if "comment" in rec:
                continue
            seen.add(check_record(rec, f"line {lineno}"))
    require(seen == set(WORKLOADS),
            f"expected one record per workload {WORKLOADS}, got {sorted(seen)}")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = 0
    for path in argv[1:]:
        try:
            check_file(path)
            print(f"{path}: OK")
        except (SchemaError, json.JSONDecodeError, OSError) as err:
            print(f"{path}: FAIL: {err}", file=sys.stderr)
            failed = 1
    return failed


if __name__ == "__main__":
    sys.exit(main(sys.argv))

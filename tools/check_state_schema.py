#!/usr/bin/env python3
"""Validate state_strategy bench output (JSONL, one record per run).

Usage: check_state_schema.py FILE [FILE...]

Each non-comment line must be a state_strategy record: identifying fields,
sane counters, the per-strategy access/state blocks, and sync/divergence
blocks that are present exactly for replication. Beyond shape, the checker
enforces the structural invariants that hold regardless of host speed
(performance comparisons are evaluated when BENCH_state.json is recorded,
not here — CI runners are too noisy for cross-record pps gates):

  * the telemetry is strategy-exclusive: writing partition is the only
    strategy with remote reads, replication the only one with avoided
    remote reads, shared-locked the only one taking locks;
  * shared-locked never redirects connection packets (transferred_out and
    foreign_in must be zero) and must have taken at least one lock on any
    run that forwarded traffic; the other strategies process a conn packet
    locally only when it arrived on the designated core;
  * replication must broadcast (frames_sent > 0 on any run that forwarded
    traffic), every broadcast frame must be applied by its destination
    replica (frames_applied == frames_sent at quiescence — frames are
    counted per destination on the send side, and the bench drains before
    reading), and the replica-divergence audit must come back CLEAN:
    mismatched == missing == extra == 0. A dirty audit fails CI —
    replication with divergent replicas is not replication;
  * apply_failures must be zero: a replica that cannot apply a sync op has
    lost state.

Exits non-zero on the first malformed file, failing the CI job. Lines whose
object carries a "comment" key are baseline annotations and only need that
key.
"""
import json
import sys

NUMBER = (int, float)
TOP_FIELDS = {
    "bench": str,
    "strategy": str,
    "workload": str,
    "cores": int,
    "flows": int,
    "elapsed_s": NUMBER,
    "injected": int,
    "forwarded": int,
    "pps": NUMBER,
    "rx_ring_drops": int,
    "conn": dict,
    "access": dict,
    "state": dict,
}
CONN_FIELDS = {"local": int, "transferred_out": int, "foreign_in": int}
ACCESS_FIELDS = {
    "reads_regular": int,
    "reads_conn": int,
    "writes_regular": int,
    "writes_conn": int,
}
STATE_FIELDS = {
    "remote_reads": int,
    "remote_reads_avoided": int,
    "lock_acquisitions": int,
}
SYNC_FIELDS = {
    "frames_sent": int,
    "bytes_sent": int,
    "ops_sent": int,
    "frames_applied": int,
    "ops_applied": int,
    "apply_failures": int,
    "alloc_stalls": int,
}
DIVERGENCE_FIELDS = {
    "entries_compared": int,
    "mismatched": int,
    "missing": int,
    "extra": int,
    "clean": bool,
}
STRATEGIES = ("writing_partition", "replication", "shared_locked")
WORKLOADS = ("churn", "nat_write", "monitor_read")


class SchemaError(Exception):
    pass


def require(cond, msg):
    if not cond:
        raise SchemaError(msg)


def check_block(rec, name, fields, where):
    block = rec.get(name)
    require(isinstance(block, dict),
            f"{where}: field {name!r} missing or not an object")
    for field, ftype in fields.items():
        require(isinstance(block.get(field), ftype),
                f"{where}: {name} field {field!r} missing or not {ftype}")
    return block


def check_record(rec, where):
    for field, ftype in TOP_FIELDS.items():
        require(isinstance(rec.get(field), ftype),
                f"{where}: field {field!r} missing or not {ftype}")
    require(rec["bench"] == "state_strategy",
            f"{where}: bench must be 'state_strategy'")
    strategy = rec["strategy"]
    require(strategy in STRATEGIES,
            f"{where}: strategy must be one of {STRATEGIES}")
    require(rec["workload"] in WORKLOADS,
            f"{where}: workload must be one of {WORKLOADS}")
    require(rec["cores"] >= 1, f"{where}: cores must be positive")
    require(rec["flows"] >= 1, f"{where}: flows must be positive")
    require(rec["elapsed_s"] > 0, f"{where}: elapsed_s must be positive")
    require(rec["pps"] >= 0, f"{where}: negative pps")

    conn = check_block(rec, "conn", CONN_FIELDS, where)
    check_block(rec, "access", ACCESS_FIELDS, where)
    state = check_block(rec, "state", STATE_FIELDS, where)

    # Per-strategy telemetry is exclusive: a counter owned by another
    # strategy must be zero (a nonzero value means the inline dispatch in
    # FlowStateApi took a branch it must never take).
    if strategy != "writing_partition":
        require(state["remote_reads"] == 0,
                f"{where}: remote_reads on a {strategy} run")
    if strategy != "replication":
        require(state["remote_reads_avoided"] == 0,
                f"{where}: remote_reads_avoided on a {strategy} run")
    if strategy != "shared_locked":
        require(state["lock_acquisitions"] == 0,
                f"{where}: lock_acquisitions on a {strategy} run")

    if strategy == "shared_locked":
        require(conn["transferred_out"] == 0 and conn["foreign_in"] == 0,
                f"{where}: shared_locked must never redirect conn packets")
        if rec["forwarded"] > 0:
            require(state["lock_acquisitions"] > 0,
                    f"{where}: shared_locked forwarded traffic without "
                    f"taking a lock")

    require("sync" in rec and "divergence" in rec,
            f"{where}: sync/divergence fields missing")
    if strategy != "replication":
        require(rec["sync"] is None,
                f"{where}: sync stats on a {strategy} run")
        require(rec["divergence"] is None,
                f"{where}: divergence audit on a {strategy} run")
        return
    sync = check_block(rec, "sync", SYNC_FIELDS, where)
    div = check_block(rec, "divergence", DIVERGENCE_FIELDS, where)
    if rec["forwarded"] > 0 and rec["cores"] > 1:
        require(sync["frames_sent"] > 0,
                f"{where}: replication forwarded traffic without "
                f"broadcasting a single sync frame")
    require(sync["frames_applied"] == sync["frames_sent"],
            f"{where}: sync frames lost in flight "
            f"(sent {sync['frames_sent']}, applied {sync['frames_applied']})")
    require(sync["apply_failures"] == 0,
            f"{where}: replica failed to apply {sync['apply_failures']} "
            f"sync ops")
    require(div["mismatched"] == 0 and div["missing"] == 0
            and div["extra"] == 0 and div["clean"],
            f"{where}: replica divergence detected "
            f"(mismatched={div['mismatched']} missing={div['missing']} "
            f"extra={div['extra']})")


def check_file(path):
    records = 0
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if "comment" in rec:
                continue
            check_record(rec, f"line {lineno}")
            records += 1
    require(records > 0, "no bench records found")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = 0
    for path in argv[1:]:
        try:
            check_file(path)
            print(f"{path}: OK")
        except (SchemaError, json.JSONDecodeError, OSError) as err:
            print(f"{path}: FAIL: {err}", file=sys.stderr)
            failed = 1
    return failed


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Validate chain_throughput bench output (JSONL, one record per config).

Usage: check_chain_schema.py FILE [FILE...]

Each non-comment line must be a chain_throughput record: the identifying
fields, sane counters (forwarded + nf_drops <= injected is NOT required —
the threaded driver counts accepted injects, the inline driver exact
batches — but forwarded must never exceed injected), and a per_hop array
whose length matches `hops` whenever telemetry was on (non-empty). Exits
non-zero on the first malformed file, failing the CI job.

Lines whose object carries a "comment" key are baseline annotations and
only need that key.
"""
import json
import sys

NUMBER = (int, float)
TOP_FIELDS = {
    "bench": str,
    "dispatch": str,
    "driver": str,
    "hops": int,
    "cores": int,
    "rx_batch": int,
    "flows": int,
    "hop_timing": int,
    "elapsed_s": NUMBER,
    "injected": int,
    "forwarded": int,
    "pps": NUMBER,
    "nf_drops": int,
    "per_hop": list,
}
# ns_per_packet is NUMBER-or-null: hop_timing=0 runs never measure it and
# must say null (a numeric value there would be a fabricated measurement).
HOP_FIELDS = {
    "hop": int,
    "nf": str,
    "packets": int,
    "drops": int,
}


class SchemaError(Exception):
    pass


def require(cond, msg):
    if not cond:
        raise SchemaError(msg)


def check_record(rec, where):
    for field, ftype in TOP_FIELDS.items():
        require(isinstance(rec.get(field), ftype),
                f"{where}: field {field!r} missing or not {ftype}")
    require(rec["bench"] == "chain_throughput",
            f"{where}: bench must be 'chain_throughput'")
    require(rec["dispatch"] in ("fused", "virtual"),
            f"{where}: dispatch must be fused|virtual")
    require(rec["driver"] in ("inline", "threaded"),
            f"{where}: driver must be inline|threaded")
    require(1 <= rec["hops"] <= 4, f"{where}: hops out of [1, 4]")
    require(rec["elapsed_s"] > 0, f"{where}: elapsed_s must be positive")
    require(rec["forwarded"] <= rec["injected"],
            f"{where}: forwarded exceeds injected")
    require(rec["pps"] >= 0, f"{where}: negative pps")

    per_hop = rec["per_hop"]
    if per_hop:
        require(len(per_hop) == rec["hops"],
                f"{where}: per_hop has {len(per_hop)} entries, hops is "
                f"{rec['hops']}")
    for i, hop in enumerate(per_hop):
        hwhere = f"{where} per_hop[{i}]"
        require(isinstance(hop, dict), f"{hwhere}: must be an object")
        for field, ftype in HOP_FIELDS.items():
            require(isinstance(hop.get(field), ftype),
                    f"{hwhere}: field {field!r} missing or not {ftype}")
        require(hop["hop"] == i, f"{hwhere}: hop index mismatch")
        require(hop["drops"] <= hop["packets"],
                f"{hwhere}: drops exceed packets")
        require("ns_per_packet" in hop,
                f"{hwhere}: field 'ns_per_packet' missing")
        nspp = hop["ns_per_packet"]
        if rec["hop_timing"] == 0:
            require(nspp is None,
                    f"{hwhere}: ns_per_packet must be null when hop timing "
                    f"is off (got {nspp!r})")
        else:
            require(nspp is None or isinstance(nspp, NUMBER),
                    f"{hwhere}: ns_per_packet must be a number or null")
            if nspp is not None:
                require(nspp >= 0, f"{hwhere}: negative ns_per_packet")


def check_file(path):
    records = 0
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if "comment" in rec:
                continue
            check_record(rec, f"line {lineno}")
            records += 1
    require(records > 0, "no bench records found")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = 0
    for path in argv[1:]:
        try:
            check_file(path)
            print(f"{path}: OK")
        except (SchemaError, json.JSONDecodeError, OSError) as err:
            print(f"{path}: FAIL: {err}", file=sys.stderr)
            failed = 1
    return failed


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Validate "sprayer.flowexport.v1" live streams (telemetry/flow_export).

Usage: check_flow_export_schema.py FILE [FILE...]

Each file is JSON-lines: "flow" records interleaved with registry
"snapshot" lines. Exits non-zero (failing the CI job) if any line is
malformed: wrong schema tag, missing or mistyped fields, an unknown
emission reason or placement class, per-flow counters that regress across
records of the same flow, or snapshot counter totals that regress across
epochs (the stream-side monotonicity the C++ exporter asserts too).
"""
import json
import sys

SCHEMA = "sprayer.flowexport.v1"
REASONS = ("idle", "interval", "final")
PLACEMENTS = ("pinned", "sprayed", "rss")
FLOW_INT_FIELDS = ("ts_ps", "flow", "packets", "bytes", "delta_packets",
                   "delta_bytes", "first_ps", "last_ps", "tcp_flags")
SNAP_HIST_FIELDS = ("count", "p50", "p90", "p99", "max")


class SchemaError(Exception):
    pass


def require(cond, msg):
    if not cond:
        raise SchemaError(msg)


def check_flow(rec, lineno, flow_watermarks):
    for field in FLOW_INT_FIELDS:
        require(isinstance(rec.get(field), int) and rec[field] >= 0,
                f"line {lineno}: {field} must be a non-negative integer")
    require(rec.get("reason") in REASONS,
            f"line {lineno}: reason must be one of {REASONS}")
    require(rec.get("placement") in PLACEMENTS,
            f"line {lineno}: placement must be one of {PLACEMENTS}")
    require(rec["tcp_flags"] <= 0xFF,
            f"line {lineno}: tcp_flags must fit one byte")
    require(rec["first_ps"] <= rec["last_ps"],
            f"line {lineno}: first_ps after last_ps")
    require(rec["delta_packets"] <= rec["packets"],
            f"line {lineno}: delta_packets exceeds packets")
    require(rec["delta_bytes"] <= rec["bytes"],
            f"line {lineno}: delta_bytes exceeds bytes")
    cores = rec.get("cores")
    require(isinstance(cores, list) and
            all(isinstance(c, int) and c >= 0 for c in cores),
            f"line {lineno}: cores must be a list of core ids")
    require(isinstance(rec.get("ooo_sampled"), bool),
            f"line {lineno}: ooo_sampled must be a boolean")
    ooo_max = rec.get("ooo_max", None)
    require(ooo_max is None or (isinstance(ooo_max, int) and ooo_max >= 0),
            f"line {lineno}: ooo_max must be an integer or null")
    require((ooo_max is not None) == rec["ooo_sampled"],
            f"line {lineno}: ooo_max null-ness disagrees with ooo_sampled")

    # Cumulative totals never regress across records of one flow. An idle
    # expiry followed by the flow returning starts a fresh aggregation, so
    # the watermark resets on idle/final (terminal records).
    key = rec["flow"]
    prev = flow_watermarks.get(key)
    if prev is not None:
        require(rec["packets"] >= prev[0] and rec["bytes"] >= prev[1],
                f"line {lineno}: flow {key} totals regressed")
    if rec["reason"] == "interval":
        flow_watermarks[key] = (rec["packets"], rec["bytes"])
    else:
        flow_watermarks.pop(key, None)


def check_snapshot(rec, lineno, counter_watermarks, last_epoch):
    for field in ("ts_ps", "epoch", "inconsistent_shards"):
        require(isinstance(rec.get(field), int) and rec[field] >= 0,
                f"line {lineno}: {field} must be a non-negative integer")
    for field in ("final", "consistent"):
        require(isinstance(rec.get(field), bool),
                f"line {lineno}: {field} must be a boolean")
    require(rec["consistent"] == (rec["inconsistent_shards"] == 0),
            f"line {lineno}: consistent flag disagrees with "
            "inconsistent_shards")
    if last_epoch is not None:
        require(rec["epoch"] > last_epoch,
                f"line {lineno}: snapshot epoch did not advance")

    for section in ("counters", "gauges"):
        require(isinstance(rec.get(section), dict),
                f"line {lineno}: {section} section missing")
        for name, total in rec[section].items():
            require(isinstance(total, int) and total >= 0,
                    f"line {lineno}: {section}[{name}] must be a "
                    "non-negative integer")
    hists = rec.get("histograms")
    require(isinstance(hists, dict),
            f"line {lineno}: histograms section missing")
    for name, entry in hists.items():
        require(isinstance(entry, dict), f"line {lineno}: {name} malformed")
        for field in SNAP_HIST_FIELDS:
            require(isinstance(entry.get(field), int) and entry[field] >= 0,
                    f"line {lineno}: {name} missing histogram "
                    f"field {field!r}")

    # Counter totals are monotonic across snapshot lines (inconsistent
    # snapshots may under-read a shard mid-update, so only consistent
    # epochs advance the watermark or are held to it).
    if rec["consistent"]:
        for name, total in rec["counters"].items():
            prev = counter_watermarks.get(name)
            require(prev is None or total >= prev,
                    f"line {lineno}: counter {name} regressed "
                    f"({prev} -> {total})")
            counter_watermarks[name] = total
    return rec["epoch"]


def check_file(path):
    flow_watermarks = {}
    counter_watermarks = {}
    last_epoch = None
    flows = snapshots = 0
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            require(rec.get("schema") == SCHEMA,
                    f"line {lineno}: schema must be {SCHEMA!r}, "
                    f"got {rec.get('schema')!r}")
            kind = rec.get("type")
            if kind == "flow":
                check_flow(rec, lineno, flow_watermarks)
                flows += 1
            elif kind == "snapshot":
                last_epoch = check_snapshot(rec, lineno, counter_watermarks,
                                            last_epoch)
                snapshots += 1
            else:
                raise SchemaError(
                    f"line {lineno}: type must be flow|snapshot, "
                    f"got {kind!r}")
    require(flows + snapshots > 0, "stream is empty")
    return flows, snapshots


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = 0
    for path in argv[1:]:
        try:
            flows, snapshots = check_file(path)
            print(f"{path}: OK ({flows} flow records, "
                  f"{snapshots} snapshots)")
        except (SchemaError, json.JSONDecodeError, OSError) as err:
            print(f"{path}: FAIL: {err}", file=sys.stderr)
            failed = 1
    return failed


if __name__ == "__main__":
    sys.exit(main(sys.argv))

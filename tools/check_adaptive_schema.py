#!/usr/bin/env python3
"""Validate adaptive_spray bench output (JSONL, one record per run).

Usage: check_adaptive_schema.py FILE [FILE...]

Each non-comment line must be an adaptive_spray record: identifying fields,
sane counters, a reorder block, and an adaptive block that is null exactly
for the static policies. Beyond shape, the checker enforces the structural
invariants that hold regardless of host speed (performance comparisons are
evaluated when BENCH_adaptive.json is recorded, not here — CI runners are
too noisy for cross-record pps gates):

  * per-flow RSS placement can never reorder: policy=rss => ooo == 0;
  * a run where every flow stayed a pinned mouse (no promotions, no
    cache-conflict fallbacks, no budget fallbacks) must also show zero
    out-of-order arrivals — pinned flows ride one FIFO end to end;
  * on any adaptive run where every mouse stayed pinned (no fallbacks, no
    conflict sprays, promotions accounted for by the elephant population),
    the mouse class specifically must show zero out-of-order arrivals;
  * pinned_flows must agree with the installed exact-rule count and fit
    the flow population.

Exits non-zero on the first malformed file, failing the CI job. Lines whose
object carries a "comment" key are baseline annotations and only need that
key.
"""
import json
import sys

NUMBER = (int, float)
TOP_FIELDS = {
    "bench": str,
    "policy": str,
    "mix": str,
    "cores": int,
    "elephants": int,
    "mice": int,
    "elephant_share": NUMBER,
    "variants": int,
    "nf_cycles": int,
    "elapsed_s": NUMBER,
    "injected": int,
    "forwarded": int,
    "pps": NUMBER,
    "rx_ring_drops": int,
    "reorder": dict,
}
REORDER_FIELDS = {
    "observed": int,
    "ooo": int,
    "max_distance": int,
    "p50": int,
    "p99": int,
}
CLASS_REORDER_FIELDS = {
    "sampled_flows": int,
    "observed": int,
    "ooo": int,
    "max_distance": int,
}
ADAPTIVE_FIELDS = {
    "pinned_flows": int,
    "pins_installed": int,
    "pin_fallbacks": int,
    "rule_evictions": int,
    "elephant_promotions": int,
    "elephant_demotions": int,
    "p2c_deflections": int,
    "narrowings": int,
    "unpinned_sprays": int,
    "fdir_exact_rules": int,
}


class SchemaError(Exception):
    pass


def require(cond, msg):
    if not cond:
        raise SchemaError(msg)


def check_record(rec, where):
    for field, ftype in TOP_FIELDS.items():
        require(isinstance(rec.get(field), ftype),
                f"{where}: field {field!r} missing or not {ftype}")
    require(rec["bench"] == "adaptive_spray",
            f"{where}: bench must be 'adaptive_spray'")
    require(rec["policy"] in ("spray", "rss", "adaptive"),
            f"{where}: policy must be spray|rss|adaptive")
    require(rec["mix"] in ("elephants", "mice", "mixed"),
            f"{where}: mix must be elephants|mice|mixed")
    require(rec["cores"] >= 1, f"{where}: cores must be positive")
    require(rec["elapsed_s"] > 0, f"{where}: elapsed_s must be positive")
    require(rec["pps"] >= 0, f"{where}: negative pps")
    require(0.0 <= rec["elephant_share"] <= 1.0,
            f"{where}: elephant_share out of [0, 1]")

    reorder = rec["reorder"]
    for field, ftype in REORDER_FIELDS.items():
        require(isinstance(reorder.get(field), ftype),
                f"{where}: reorder field {field!r} missing or not {ftype}")
    require(reorder["ooo"] <= reorder["observed"],
            f"{where}: more ooo packets than observed")
    # p50/p99 are LogHistogram bucket *upper edges* while max_distance is the
    # exact maximum, so p99 may land just above max_distance (same bucket);
    # only quantile-vs-quantile ordering is checkable.
    require(reorder["p50"] <= reorder["p99"] or reorder["ooo"] == 0,
            f"{where}: reorder quantiles not monotonic")
    if rec["policy"] == "rss":
        require(reorder["ooo"] == 0,
                f"{where}: per-flow RSS placement must never reorder")

    for cls in ("reorder_elephants", "reorder_mice"):
        block = rec.get(cls)
        require(isinstance(block, dict),
                f"{where}: field {cls!r} missing or not an object")
        for field, ftype in CLASS_REORDER_FIELDS.items():
            require(isinstance(block.get(field), ftype),
                    f"{where}: {cls} field {field!r} missing or not {ftype}")
        require(block["ooo"] <= block["observed"],
                f"{where}: {cls} has more ooo packets than observed")
    require(rec["reorder_elephants"]["ooo"] + rec["reorder_mice"]["ooo"]
            <= reorder["ooo"],
            f"{where}: per-class ooo exceeds the aggregate")

    require("adaptive" in rec, f"{where}: field 'adaptive' missing")
    adaptive = rec["adaptive"]
    if rec["policy"] != "adaptive":
        require(adaptive is None,
                f"{where}: adaptive stats on a static-policy run")
        return
    require(isinstance(adaptive, dict),
            f"{where}: adaptive block must be an object")
    for field, ftype in ADAPTIVE_FIELDS.items():
        require(isinstance(adaptive.get(field), ftype),
                f"{where}: adaptive field {field!r} missing or not {ftype}")
    require(adaptive["pinned_flows"] == adaptive["fdir_exact_rules"],
            f"{where}: pinned_flows disagrees with installed exact rules")
    require(adaptive["pinned_flows"] <= rec["elephants"] + rec["mice"],
            f"{where}: more pinned flows than flows")
    require(adaptive["pins_installed"] >= adaptive["pinned_flows"],
            f"{where}: pinned_flows exceeds pins ever installed")
    if (adaptive["elephant_promotions"] == 0
            and adaptive["unpinned_sprays"] == 0
            and adaptive["pin_fallbacks"] == 0):
        require(reorder["ooo"] == 0,
                f"{where}: all flows were pinned mice yet packets arrived "
                f"out of order")
    if (adaptive["unpinned_sprays"] == 0
            and adaptive["pin_fallbacks"] == 0
            and adaptive["elephant_promotions"] <= rec["elephants"]):
        require(rec["reorder_mice"]["ooo"] == 0,
                f"{where}: pinned mice must arrive in order")


def check_file(path):
    records = 0
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if "comment" in rec:
                continue
            check_record(rec, f"line {lineno}")
            records += 1
    require(records > 0, "no bench records found")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = 0
    for path in argv[1:]:
        try:
            check_file(path)
            print(f"{path}: OK")
        except (SchemaError, json.JSONDecodeError, OSError) as err:
            print(f"{path}: FAIL: {err}", file=sys.stderr)
            failed = 1
    return failed


if __name__ == "__main__":
    sys.exit(main(sys.argv))
